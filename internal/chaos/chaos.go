// Package chaos is the seed-reproducible soak harness for the supervised
// pipeline: it composes every disruption the fault injector knows —
// transient and permanent queue faults, stage panics, forced stalls under
// starvation timeouts, artificially tiny queue capacities, mid-run
// cancellation — across all built-in workloads, and asserts the
// supervisor's contract on every single run: the caller gets either the
// bit-identical sequential state or a typed error; never a hang, never a
// wrong answer.
//
// Every scenario derives from Options.Seed through per-run sub-seeds, so a
// soak truncated by budget still replays run-for-run from its report line,
// and any individual failure reproduces from (seed, run index) alone.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dswp/internal/ckptstore"
	"dswp/internal/core"
	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
	"dswp/internal/supervisor"
	"dswp/internal/validate"
	"dswp/internal/workloads"
)

// Options configures a soak.
type Options struct {
	// Ctx, when set, bounds the whole soak externally: each scenario's
	// context derives from it, and when it expires the soak stops early
	// with Report.Aborted set. The serving engine uses this to keep
	// background soaks inside server deadlines. nil = context.Background().
	Ctx context.Context
	// Seed drives every randomized choice; 0 = 1.
	Seed uint64
	// Runs is the number of chaos scenarios to execute (0 = 200).
	Runs int
	// Budget bounds total soak wall-clock time; when it expires the soak
	// stops early and reports how many runs completed (0 = no budget).
	Budget time.Duration
	// Threads is the partition width (0 = 2).
	Threads int
	// Queue forces one communication substrate for every run
	// (queue.KindChannel or queue.KindRing). Ignored when Mix is set.
	Queue queue.Kind
	// Mix randomizes the substrate per run instead, covering both kinds
	// in one soak (the harness default from the CLI).
	Mix bool
	// Logf, when set, receives progress and failure lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs == 0 {
		o.Runs = 200
	}
	if o.Threads == 0 {
		o.Threads = 2
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Report is the soak outcome. The contract holds iff OK().
type Report struct {
	// Seed echoes the soak seed for reproduction.
	Seed uint64
	// Runs counts executed scenarios (may be below Options.Runs when the
	// budget truncated the soak).
	Runs int
	// Clean counts runs where the concurrent attempt needed no recovery.
	Clean int
	// Recovered counts runs that hit an injected failure and still
	// produced the correct state (in-place retry or sequential resume).
	Recovered int
	// Canceled counts mid-run-cancellation scenarios that ended with a
	// context error — the one legitimate way to not produce a result.
	Canceled int
	// ByClass histograms the attempt failures the supervisor survived,
	// keyed by error class name.
	ByClass map[string]int
	// ByMode histograms executed scenarios by mode name, so a soak can
	// prove every mode (including the durable crash-recovery rehearsal)
	// was actually reached.
	ByMode map[string]int
	// WrongState counts runs whose final state diverged from the
	// sequential baseline. Must be zero.
	WrongState int
	// Untyped counts runs that failed with an error outside the typed
	// taxonomy. Must be zero.
	Untyped int
	// Hangs counts runs that blew the per-run hang deadline. Must be zero.
	Hangs int
	// NotRecovered lists non-cancellation scenarios that ended in error
	// (the supervisor should have recovered), with repro info.
	NotRecovered []string
	// Aborted is true when Options.Ctx expired before the soak finished;
	// Runs counts only the scenarios that completed before the cut.
	Aborted bool
}

// OK reports whether the soak upheld the supervisor's contract.
func (r *Report) OK() bool {
	return r.WrongState == 0 && r.Untyped == 0 && r.Hangs == 0 && len(r.NotRecovered) == 0
}

func (r *Report) String() string {
	s := fmt.Sprintf("chaos: %d runs (seed %d): %d clean, %d recovered, %d canceled",
		r.Runs, r.Seed, r.Clean, r.Recovered, r.Canceled)
	if r.Aborted {
		s += ", aborted by deadline"
	}
	if !r.OK() {
		s += fmt.Sprintf(" — CONTRACT VIOLATED: %d wrong-state, %d untyped, %d hangs, %d not-recovered",
			r.WrongState, r.Untyped, r.Hangs, len(r.NotRecovered))
	}
	return s
}

// chaosRNG is the repo-wide xorshift64* generator.
type chaosRNG struct{ s uint64 }

func (r *chaosRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *chaosRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// target is a workload prepared for soaking: transformed threads plus the
// sequential baseline to diff against. Each transformable workload yields
// two targets, with and without compiler-side flow packing, so the soak
// exercises packed multi-word queues under every failure mode.
type target struct {
	prog   *workloads.Program
	tr     *core.Transformed
	base   *interp.Result
	packed bool
}

// scenario modes. Cancellation composes orthogonally on top of any mode.
const (
	modeCleanFaults = iota // RandomFaults timing perturbation only
	modeTransient          // transient queue fault within the retry budget
	modePermanent          // permanent queue fault -> sequential resume
	modePanic              // injected stage panic -> sequential resume
	modeStarve             // forced stalls under a tiny attempt timeout
	modeDurable            // crash: durable store is all that survives
	numModes
)

var modeNames = [numModes]string{"clean", "transient", "permanent", "panic", "starve", "durable"}

// hangDeadline is the per-run ceiling the harness enforces from outside
// the supervisor; crossing it is recorded as a hang — the one failure the
// typed-error contract can never report about itself.
const hangDeadline = 20 * time.Second

// Soak executes opts.Runs chaos scenarios and reports. It returns (never
// panics) even when the contract is violated; callers gate on Report.OK().
func Soak(opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Seed: opts.Seed, ByClass: map[string]int{}, ByMode: map[string]int{}}
	start := time.Now()
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}

	var targets []*target
	for _, p := range validate.AllPrograms() {
		base, err := interp.Run(p.F, interp.Options{Mem: p.Mem, Regs: p.Regs})
		if err != nil {
			continue
		}
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			continue
		}
		tr, err := core.Apply(p.F, p.LoopHeader, prof, core.Config{
			NumThreads: opts.Threads, SkipProfitability: true,
		})
		if err != nil {
			continue // single-SCC workloads have nothing to pipeline
		}
		targets = append(targets, &target{prog: p, tr: tr, base: base})
		if trP, err := core.Apply(p.F, p.LoopHeader, prof, core.Config{
			NumThreads: opts.Threads, SkipProfitability: true, PackFlows: true,
		}); err == nil {
			targets = append(targets, &target{prog: p, tr: trP, base: base, packed: true})
		}
	}
	if len(targets) == 0 {
		rep.NotRecovered = append(rep.NotRecovered, "no transformable workloads")
		return rep
	}
	opts.logf("chaos: %d targets, %d runs, seed %d", len(targets), opts.Runs, opts.Seed)

	seeder := &chaosRNG{s: opts.Seed | 1}
	for i := 0; i < opts.Runs; i++ {
		if opts.Ctx.Err() != nil {
			rep.Aborted = true
			opts.logf("chaos: context expired after %d/%d runs", i, opts.Runs)
			break
		}
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			opts.logf("chaos: budget exhausted after %d/%d runs", i, opts.Runs)
			break
		}
		// Each run gets its own sub-seed so a budget-truncated soak still
		// replays the runs it did execute, run-for-run.
		soakOne(rep, targets, i, seeder.next(), opts)
		rep.Runs++
	}
	opts.logf("%s", rep)
	return rep
}

// soakOne executes chaos scenario (seed, run index i) and scores it.
func soakOne(rep *Report, targets []*target, i int, subSeed uint64, opts Options) {
	rng := &chaosRNG{s: subSeed | 1}
	tg := targets[rng.intn(len(targets))]
	mode := rng.intn(numModes)
	rep.ByMode[modeNames[mode]]++
	midCancel := rng.intn(4) == 0 // 25% of runs get a mid-flight cancel
	caps := []int{1, 2, 8, 32}
	cap := caps[rng.intn(len(caps))]
	every := []int64{4, 16, 64}[rng.intn(3)]

	kind := opts.Queue
	if opts.Mix {
		kind = queue.Kind(rng.intn(2))
	}

	plan := rt.RandomFaults(rng.next(), len(tg.tr.Threads), tg.tr.NumQueues)
	pol := supervisor.Policy{
		QueueCap:        cap,
		Queue:           kind,
		CheckpointEvery: every,
		AttemptTimeout:  10 * time.Second,
		Retry: rt.RetryPolicy{MaxAttempts: 4,
			Backoff: 5 * time.Microsecond, MaxBackoff: 100 * time.Microsecond},
		Faults: plan,
	}
	nq, nt := tg.tr.NumQueues, len(tg.tr.Threads)
	var store *ckptstore.MemStore
	switch mode {
	case modeTransient:
		plan.QueueFault = map[int]rt.QueueFaultSpec{rng.intn(nq): {
			Class: rt.FaultTransient, Every: int64(16 + rng.intn(256)), Fails: 1 + rng.intn(3)}}
	case modePermanent:
		plan.QueueFault = map[int]rt.QueueFaultSpec{rng.intn(nq): {
			Class: rt.FaultPermanent, Every: int64(32 + rng.intn(512))}}
	case modeStarve:
		// Stall one thread hard enough that the watchdog's wall-clock
		// bound fires, forcing the timeout -> resume path.
		plan.ThreadStall = map[int]rt.ThreadStall{rng.intn(nt): {
			Every: int64(64 + rng.intn(192)), Delay: 2 * time.Millisecond}}
		pol.AttemptTimeout = 50 * time.Millisecond
		pol.Poll = time.Millisecond
	case modePanic:
		plan.ThreadPanic = map[int]int64{rng.intn(nt): int64(50 + rng.intn(2000))}
	case modeDurable:
		// Process-crash rehearsal: a permanent failure kills the attempt
		// with sequential resume disabled, so the durable store is the
		// only survivor. Recovery then re-executes the original loop from
		// the last committed entry — exactly what dswpd does on restart.
		if rng.intn(2) == 0 {
			plan.ThreadPanic = map[int]int64{rng.intn(nt): int64(50 + rng.intn(2000))}
		} else {
			plan.QueueFault = map[int]rt.QueueFaultSpec{rng.intn(nq): {
				Class: rt.FaultPermanent, Every: int64(32 + rng.intn(512))}}
		}
		store = ckptstore.NewMem()
		pol.DisableResume = true
		pol.Store = store
		pol.StoreKey = fmt.Sprintf("durable.%d", i)
		pol.StoreMeta = []byte(tg.prog.Name)
	}

	pack := ""
	if tg.packed {
		pack = " packed"
	}
	tag := fmt.Sprintf("run=%d seed=%d %s%s/%s queue=%s cap=%d every=%d cancel=%v",
		i, opts.Seed, tg.prog.Name, pack, modeNames[mode], kind, cap, every, midCancel)

	// The scenario context derives from the soak's external one, so an
	// engine-imposed deadline cuts running scenarios short too; the scoring
	// below treats that like an injected cancel, not a contract violation.
	ctx, cancel := context.WithCancel(opts.Ctx)
	defer cancel()
	if midCancel {
		delay := time.Duration(rng.intn(2000)) * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		defer timer.Stop()
	}

	pipe := supervisor.Pipeline{
		Threads: tg.tr.Threads, Original: tg.prog.F, LoopHeader: tg.prog.LoopHeader,
		RegOwner: tg.tr.RegOwner, Mem: tg.prog.Mem, Regs: tg.prog.Regs,
	}

	// The hang watchdog runs the supervisor on a goroutine and gives up
	// after hangDeadline: a run that neither returns nor cancels is the
	// contract violation the typed-error taxonomy cannot self-report.
	type outcome struct {
		res  *interp.Result
		srep *supervisor.Report
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, srep, err := supervisor.Run(ctx, pipe, pol)
		ch <- outcome{res, srep, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-time.After(hangDeadline):
		rep.Hangs++
		opts.logf("chaos FAIL (hang): %s", tag)
		cancel() // unblock the stuck goroutine if it is still listening
		return
	}

	if out.srep != nil && out.srep.Failure != nil {
		rep.ByClass[classOf(out.srep.Failure)]++
	}
	if mode == modeDurable {
		scoreDurable(rep, tg, store, pol.StoreKey, out.err,
			midCancel || opts.Ctx.Err() != nil, rng, tag, opts)
		return
	}
	if out.err != nil {
		if isCancel(out.err) {
			if midCancel || opts.Ctx.Err() != nil {
				rep.Canceled++
				return
			}
			// A cancellation error without an injected cancel means the
			// supervisor gave up on something it should have survived.
		}
		if !typed(out.err) {
			rep.Untyped++
			opts.logf("chaos FAIL (untyped error): %s: %v", tag, out.err)
			return
		}
		if midCancel || opts.Ctx.Err() != nil {
			// Raced the cancel but died on the injected failure first;
			// either terminal state is acceptable under cancellation.
			rep.Canceled++
			return
		}
		rep.NotRecovered = append(rep.NotRecovered, fmt.Sprintf("%s: %v", tag, out.err))
		opts.logf("chaos FAIL (not recovered): %s: %v", tag, out.err)
		return
	}

	if cerr := validate.Compare(tag, tg.base, out.res); cerr != nil {
		rep.WrongState++
		opts.logf("chaos FAIL (wrong state): %v", cerr)
		return
	}
	if out.srep.Failure != nil {
		rep.Recovered++
	} else {
		rep.Clean++
	}
}

// scoreDurable scores a modeDurable run: the supervised attempt ran with
// sequential resume disabled and a MemStore standing in for the on-disk
// checkpoint directory. This helper then plays the restarted process —
// read the durable entry back, rebuild the checkpoint against the pristine
// memory image, re-execute the original loop sequentially from that cut
// (or from scratch when nothing committed / the entry is corrupt), and
// demand the bit-identical final state.
func scoreDurable(rep *Report, tg *target, store *ckptstore.MemStore, key string,
	runErr error, canceled bool, rng *chaosRNG, tag string, opts Options) {
	if runErr == nil {
		// The injected failure never fired (the loop retired too few
		// instructions); the pipelined run finished normally and deleted
		// nothing — there is no crash to recover from.
		rep.Clean++
		return
	}
	if isCancel(runErr) && canceled {
		rep.Canceled++
		return
	}
	if !typed(runErr) {
		rep.Untyped++
		opts.logf("chaos FAIL (untyped error): %s: %v", tag, runErr)
		return
	}

	// A quarter of recoveries face a torn entry: the store must surface
	// ErrCorrupt (never a wrong checkpoint) and recovery must fall back
	// to a from-scratch re-execution.
	torn := rng.intn(4) == 0
	if torn {
		store.Corrupt(key)
	}

	iopts := interp.Options{Ctx: opts.Ctx}
	e, gerr := store.Get(key)
	switch {
	case gerr == nil:
		cp, cerr := e.Checkpoint(tg.prog.Mem)
		if cerr != nil {
			rep.NotRecovered = append(rep.NotRecovered,
				fmt.Sprintf("%s: rebuilding durable checkpoint: %v", tag, cerr))
			opts.logf("chaos FAIL (not recovered): %s: %v", tag, cerr)
			return
		}
		iopts.StartBlock = tg.prog.LoopHeader
		iopts.RegFile = cp.Regs
		iopts.Mem = cp.Mem
	case errors.Is(gerr, ckptstore.ErrNotFound),
		errors.Is(gerr, ckptstore.ErrCorrupt) && torn:
		// Died before the first commit, or the entry we tore was
		// detected: recover from scratch.
		iopts.Mem = tg.prog.Mem
		iopts.Regs = tg.prog.Regs
	default:
		rep.NotRecovered = append(rep.NotRecovered,
			fmt.Sprintf("%s: durable store get (torn=%v): %v", tag, torn, gerr))
		opts.logf("chaos FAIL (not recovered): %s: %v", tag, gerr)
		return
	}

	res, rerr := interp.Run(tg.prog.F, iopts)
	if rerr != nil {
		if isCancel(rerr) && canceled {
			rep.Canceled++
			return
		}
		rep.NotRecovered = append(rep.NotRecovered,
			fmt.Sprintf("%s: durable recovery run: %v", tag, rerr))
		opts.logf("chaos FAIL (not recovered): %s: %v", tag, rerr)
		return
	}
	if cerr := validate.Compare(tag, tg.base, res); cerr != nil {
		rep.WrongState++
		opts.logf("chaos FAIL (wrong state after durable recovery): %v", cerr)
		return
	}
	rep.Recovered++
}

// isCancel reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// typed reports whether err belongs to the supervised taxonomy — the
// chaos contract requires every failure to be classifiable.
func typed(err error) bool {
	var (
		de *rt.DeadlockError
		te *rt.TimeoutError
		se *rt.StepLimitError
		sf *rt.StageFailure
		qf *rt.QueueFaultError
		ce *rt.CanceledError
		me *validate.MismatchError
	)
	return errors.As(err, &de) || errors.As(err, &te) || errors.As(err, &se) ||
		errors.As(err, &sf) || errors.As(err, &qf) || errors.As(err, &ce) ||
		errors.As(err, &me) || isCancel(err)
}

// classOf names an error's class for the ByClass histogram.
func classOf(err error) string {
	var (
		de *rt.DeadlockError
		te *rt.TimeoutError
		se *rt.StepLimitError
		sf *rt.StageFailure
		qf *rt.QueueFaultError
		ce *rt.CanceledError
	)
	switch {
	case errors.As(err, &sf):
		return "stage-panic"
	case errors.As(err, &qf):
		return "queue-fault-" + qf.Class.String()
	case errors.As(err, &de):
		return "deadlock"
	case errors.As(err, &te):
		return "timeout"
	case errors.As(err, &se):
		return "step-limit"
	case errors.As(err, &ce), isCancel(err):
		return "canceled"
	}
	return "untyped"
}
