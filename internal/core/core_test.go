package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"dswp/internal/interp"
	"dswp/internal/ir"
	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// runBoth executes the original program and the DSWP'ed threads and
// checks memory + live-out equivalence, the fundamental correctness
// property of the transformation.
func runBoth(t *testing.T, p *workloads.Program, tr *Transformed) (*interp.Result, *interp.Result) {
	t.Helper()
	base, err := interp.Run(p.F, p.Options())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	multi, err := interp.RunThreads(tr.Threads, p.Options())
	if err != nil {
		for i, th := range tr.Threads {
			t.Logf("thread %d:\n%s", i, th)
		}
		t.Fatalf("dswp run: %v", err)
	}
	if d := base.Mem.Diff(multi.Mem); d != -1 {
		t.Fatalf("memory diverges at word %d: base=%d dswp=%d",
			d, base.Mem.Get(d), multi.Mem.Get(d))
	}
	for r, v := range base.LiveOuts {
		if multi.LiveOuts[r] != v {
			t.Fatalf("live-out %s: base=%d dswp=%d", r, v, multi.LiveOuts[r])
		}
	}
	return base, multi
}

func mustProfile(t *testing.T, p *workloads.Program) *profile.Profile {
	t.Helper()
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func applyDSWP(t *testing.T, p *workloads.Program, config Config) *Transformed {
	t.Helper()
	prof := mustProfile(t, p)
	tr, err := Apply(p.F, p.LoopHeader, prof, config)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return tr
}

func TestDSWPListOfListsEquivalence(t *testing.T) {
	p := workloads.ListOfLists(40, 6)
	tr := applyDSWP(t, p, Config{})
	if len(tr.Threads) != 2 {
		t.Fatalf("got %d threads, want 2", len(tr.Threads))
	}
	base, _ := runBoth(t, p, tr)
	if want := workloads.SumOfLists(p); base.LiveOuts[ir.Reg(10)] != want {
		t.Fatalf("baseline sum = %d, want %d", base.LiveOuts[ir.Reg(10)], want)
	}
}

func TestDSWPListOfListsStructure(t *testing.T) {
	p := workloads.ListOfLists(40, 6)
	tr := applyDSWP(t, p, Config{})

	// The paper's Figure 2 pipeline: a control flow for the outer exit
	// branch, a data flow for the inner-list head (r2), and a final flow
	// for the sum (r10).
	var ctrl, loopData, finals, inits int
	for _, fl := range tr.Flows {
		switch {
		case fl.Kind == FlowControl:
			ctrl++
		case fl.Kind == FlowData && fl.Pos == FlowLoop:
			loopData++
		case fl.Pos == FlowFinal:
			finals++
		case fl.Pos == FlowInitial:
			inits++
		}
	}
	if ctrl == 0 {
		t.Error("expected at least one control flow (duplicated exit branch)")
	}
	if loopData == 0 {
		t.Error("expected at least one loop data flow")
	}
	if finals != 1 {
		t.Errorf("final flows = %d, want 1 (the sum)", finals)
	}
	// The consumer thread owns the accumulator: it needs r10's initial
	// value delivered.
	if inits == 0 {
		t.Error("expected initial flows for consumer live-ins")
	}

	// Both threads verify and the producer (main) thread contains no
	// consume of loop data (acyclic pipeline): all loop-flow arrows go
	// main -> aux.
	for _, fl := range tr.Flows {
		if fl.Pos == FlowLoop && fl.From != 0 {
			t.Errorf("loop flow from thread %d: pipeline should be 0 -> 1", fl.From)
		}
	}
}

func TestDSWPPointerChaseEquivalence(t *testing.T) {
	p := workloads.ListTraversal(200)
	tr := applyDSWP(t, p, Config{})
	runBoth(t, p, tr)

	// Stage 0 must hold the pointer chase (the critical path stays on
	// one core — the paper's key insight); stage 1 the val update.
	main := tr.Threads[0]
	var mainLoads, mainStores int
	main.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			mainLoads++
		case ir.OpStore:
			mainStores++
		}
	})
	if mainLoads == 0 {
		t.Error("main thread lost the pointer-chasing load")
	}
	if mainStores != 0 {
		t.Error("store should live in the consumer thread")
	}
}

func TestDSWPTinyLists(t *testing.T) {
	for _, n := range []int64{1, 2, 3} {
		p := workloads.ListTraversal(n)
		tr := applyDSWP(t, p, Config{SkipProfitability: true})
		runBoth(t, p, tr)
	}
}

func TestDSWPEmptyListOfLists(t *testing.T) {
	// Zero outer iterations: the loop exits immediately; aux thread must
	// still terminate (it consumes the exit-branch flag).
	p := workloads.ListOfLists(0, 0)
	tr := applyDSWP(t, p, Config{SkipProfitability: true})
	runBoth(t, p, tr)
}

func TestQuickDSWPEquivalenceRandomLists(t *testing.T) {
	check := func(seed uint16) bool {
		n := int64(seed%37) + 1
		inner := int64(seed%5) + 1
		p := workloads.ListOfLists(n, inner)
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			return false
		}
		tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
		if err != nil {
			return false
		}
		base, err := interp.Run(p.F, p.Options())
		if err != nil {
			return false
		}
		multi, err := interp.RunThreads(tr.Threads, p.Options())
		if err != nil {
			return false
		}
		return base.Mem.Diff(multi.Mem) == -1 &&
			base.LiveOuts[ir.Reg(10)] == multi.LiveOuts[ir.Reg(10)]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAllEnumeratedPartitionsCorrect runs every valid two-way cut of the
// list-of-lists DAG_SCC and checks them all for equivalence — the property
// the "best manually directed" search relies on.
func TestAllEnumeratedPartitionsCorrect(t *testing.T) {
	p := workloads.ListOfLists(15, 4)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	parts := a.Enumerate(256)
	if len(parts) < 2 {
		t.Fatalf("only %d candidate partitionings", len(parts))
	}
	for i, part := range parts {
		tr, err := a.Transform(part)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		base, err := interp.Run(p.F, p.Options())
		if err != nil {
			t.Fatal(err)
		}
		multi, err := interp.RunThreads(tr.Threads, p.Options())
		if err != nil {
			t.Fatalf("partition %d (assign %v): %v", i, part.Assign, err)
		}
		if base.LiveOuts[ir.Reg(10)] != multi.LiveOuts[ir.Reg(10)] {
			t.Fatalf("partition %d: sums differ", i)
		}
	}
}

func TestSingleSCCBailsOut(t *testing.T) {
	// A loop that is one big recurrence: r1 = M[r1]; exit test on r1 —
	// the 164.gzip situation.
	src := `func chase {
pre:
    r1 = const 16
    r2 = const 0
    jump h
h:
    r1 = load [r1+0] @?
    r3 = cmpeq r1, r2
    br r3, out, h
out:
    ret
}
`
	f := ir.MustParse(src)
	f.AddObject("mem", 64)
	mem := interp.MemoryFor(f)
	mem.Set(16, 18)
	mem.Set(18, 0)
	prof, err := profile.Collect(f, interp.Options{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(f, "h", prof, Config{})
	if !errors.Is(err, ErrSingleSCC) {
		t.Fatalf("err = %v, want ErrSingleSCC", err)
	}
}

func TestUnprofitableBailsOut(t *testing.T) {
	// Two SCCs but grossly imbalanced (one tiny accumulator vs a chain):
	// heuristic puts nearly everything in one stage; the margin test
	// should reject at a high threshold.
	p := workloads.ListTraversal(50)
	prof := mustProfile(t, p)
	_, err := Apply(p.F, p.LoopHeader, prof, Config{Margin: 0.99})
	if !errors.Is(err, ErrUnprofitable) {
		t.Fatalf("err = %v, want ErrUnprofitable", err)
	}
}

func TestHeuristicBalance(t *testing.T) {
	p := workloads.ListOfLists(60, 8)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	if part.N != 2 {
		t.Fatalf("heuristic stages = %d, want 2", part.N)
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	w := part.StageWeights()
	total := w[0] + w[1]
	// Load balance: the heavier stage should hold less than 85% of the
	// work for this loop (the inner-loop body dominates and is
	// separable from the outer chase).
	heavy := w[0]
	if w[1] > heavy {
		heavy = w[1]
	}
	if float64(heavy) > 0.85*float64(total) {
		t.Errorf("stage weights %v poorly balanced", w)
	}
}

func TestValidateRejectsBackwardArc(t *testing.T) {
	p := workloads.ListOfLists(10, 3)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	// Flip the assignment: puts consumers before producers.
	bad := &Partitioning{G: part.G, Cond: part.Cond, N: part.N, Weights: part.Weights}
	bad.Assign = make([]int, len(part.Assign))
	for i, v := range part.Assign {
		bad.Assign[i] = part.N - 1 - v
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected backward-arc error")
	}
	if _, err := Split(a.G, bad); err == nil {
		t.Fatal("Split must reject invalid partitionings")
	}
}

func TestValidateRejectsEmptyPartition(t *testing.T) {
	p := workloads.ListOfLists(10, 3)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	bad := &Partitioning{G: part.G, Cond: part.Cond, N: part.N + 1, Weights: part.Weights, Assign: part.Assign}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v, want empty partition error", err)
	}
}

func TestFlowCountsClassification(t *testing.T) {
	p := workloads.ListOfLists(20, 4)
	tr := applyDSWP(t, p, Config{})
	initial, loop, final := tr.FlowCounts()
	if initial+loop+final != len(tr.Flows) {
		t.Fatalf("FlowCounts %d+%d+%d != %d flows", initial, loop, final, len(tr.Flows))
	}
	if tr.NumQueues != len(tr.Flows) {
		t.Fatalf("NumQueues = %d, want %d (one queue per flow)", tr.NumQueues, len(tr.Flows))
	}
}

func TestProfitabilityEstimator(t *testing.T) {
	p := workloads.ListOfLists(60, 8)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	if !Profitable(part, prof, 0.02) {
		t.Error("balanced two-stage pipeline should be estimated profitable")
	}
	if Profitable(part, prof, 0.99) {
		t.Error("no pipeline clears a 99% margin")
	}
	single := &Partitioning{G: part.G, Cond: part.Cond, N: 1,
		Assign: make([]int, len(part.Assign)), Weights: part.Weights}
	if Profitable(single, prof, 0.0) {
		t.Error("single partition is never profitable")
	}
}

func TestBalanceScore(t *testing.T) {
	p := workloads.ListOfLists(30, 5)
	prof := mustProfile(t, p)
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	best := a.Heuristic()
	parts := a.Enumerate(512)
	worst := parts[0]
	for _, q := range parts {
		if BalanceScore(q) > BalanceScore(worst) {
			worst = q
		}
	}
	if BalanceScore(best) > BalanceScore(worst) {
		t.Errorf("heuristic balance %f worse than worst enumerated %f",
			BalanceScore(best), BalanceScore(worst))
	}
}

func TestFlowKindAndPosStrings(t *testing.T) {
	if FlowData.String() != "data" || FlowControl.String() != "control" || FlowSync.String() != "sync" {
		t.Error("FlowKind strings")
	}
	if FlowLoop.String() != "loop" || FlowInitial.String() != "initial" || FlowFinal.String() != "final" {
		t.Error("FlowPos strings")
	}
	if FlowKind(9).String() != "?" || FlowPos(9).String() != "?" {
		t.Error("unknown enums")
	}
}
