package core

import (
	"strings"
	"testing"

	"dswp/internal/ir"
	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// §3 runtime protocol tests: auxiliary threads wrap their stage in a
// master loop, woken per invocation and terminated with a zero id.

func masterTransform(t *testing.T, p *workloads.Program) *Transformed {
	t.Helper()
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true, MasterLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMasterLoopEquivalence(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			tr := masterTransform(t, p)
			runBoth(t, p, tr)
		})
	}
}

func TestMasterLoopStructure(t *testing.T) {
	p := workloads.ListOfLists(20, 4)
	tr := masterTransform(t, p)

	aux := tr.Threads[1]
	master := aux.BlockByName("dswp.master")
	if master == nil {
		t.Fatalf("no master block:\n%s", aux)
	}
	if aux.Entry() != master {
		t.Error("master block must be the aux entry point")
	}
	if master.Instrs[0].Op != ir.OpConsume {
		t.Error("master must block on the master queue")
	}
	br := master.Terminator()
	if br == nil || br.Op != ir.OpBranch {
		t.Fatal("master must dispatch on the received id")
	}
	if br.TargetFalse.Name != "dswp.halt" {
		t.Errorf("zero id must halt, got %s", br.TargetFalse.Name)
	}
	// The stage exit loops back to the master, not ret.
	exit := aux.BlockByName("dswp.exit")
	if term := exit.Terminator(); term == nil || term.Op != ir.OpJump || term.Target != master {
		t.Errorf("stage exit must rejoin the master loop, got %v", exit.Terminator())
	}

	// The main thread activates before the loop and terminates after.
	text := tr.Threads[0].String()
	if !strings.Contains(text, "dswp.exit.") {
		t.Error("main thread missing exit-split block")
	}
}

func TestMasterLoopThreeStages(t *testing.T) {
	p := workloads.MCF()
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{NumThreads: 3, MasterLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	if part.N < 3 {
		t.Skip("heuristic delivered fewer stages")
	}
	tr, err := a.Transform(part)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, p, tr)
	// Each aux thread got its own master queue.
	masters := 0
	for _, fl := range tr.Flows {
		if fl.Kind == FlowControl && fl.Pos == FlowInitial {
			masters++
		}
	}
	if masters != part.N-1 {
		t.Errorf("master queues = %d, want %d", masters, part.N-1)
	}
}

func TestMasterLoopWithNoFinalFlows(t *testing.T) {
	// epicdec has no register live-outs: the exit split must still carry
	// the terminate signal.
	p := workloads.Epic()
	tr := masterTransform(t, p)
	runBoth(t, p, tr)
}
