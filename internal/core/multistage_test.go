package core

import (
	"testing"

	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// The paper targets a dual-core CMP, but Definition 1 and the algorithm
// are defined for any pipeline depth t. These tests exercise deeper
// pipelines end-to-end.

func TestThreeStagePipelineEquivalence(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			prof, err := profile.Collect(p.F, p.Options())
			if err != nil {
				t.Fatal(err)
			}
			a, err := Analyze(p.F, p.LoopHeader, prof, Config{NumThreads: 3})
			if err != nil {
				t.Fatal(err)
			}
			part := a.Heuristic()
			if part.N < 2 {
				t.Skipf("heuristic found no multi-stage cut (%d SCCs)", a.NumSCCs())
			}
			tr, err := a.Transform(part)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Threads) != part.N {
				t.Fatalf("threads = %d, want %d", len(tr.Threads), part.N)
			}
			runBoth(t, p, tr)
		})
	}
}

func TestDeepPipelineOnLinearDAG(t *testing.T) {
	// mcf's DAG is mostly a chain: it should split into 4 stages.
	p := workloads.MCF()
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{NumThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	if part.N < 3 {
		t.Fatalf("expected at least 3 stages from %d SCCs, got %d", a.NumSCCs(), part.N)
	}
	tr, err := a.Transform(part)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, p, tr)

	// Every intermediate stage both consumes and produces loop flows —
	// a real pipeline, not a hub-and-spokes.
	produces := make([]int, part.N)
	consumes := make([]int, part.N)
	for _, fl := range tr.Flows {
		if fl.Pos == FlowLoop {
			produces[fl.From]++
			consumes[fl.To]++
		}
	}
	for s := 1; s < part.N-1; s++ {
		if consumes[s] == 0 {
			t.Errorf("stage %d consumes nothing", s)
		}
	}
	if consumes[part.N-1] == 0 {
		t.Error("last stage consumes nothing")
	}
	if produces[0] == 0 {
		t.Error("first stage produces nothing")
	}
}

func TestPipelineDepthRequestedVsDelivered(t *testing.T) {
	// Requesting more threads than SCCs must cap gracefully.
	p := workloads.ListTraversal(100)
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{NumThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	if part.N > a.NumSCCs() {
		t.Fatalf("more stages (%d) than SCCs (%d)", part.N, a.NumSCCs())
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := a.Transform(part)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, p, tr)
	_ = interp.Options{}
}
