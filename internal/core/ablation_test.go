package core

import (
	"testing"

	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// Ablations of the design choices DESIGN.md calls out.

func TestNoRedundantFlowElimStillCorrect(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			prof, err := profile.Collect(p.F, p.Options())
			if err != nil {
				t.Fatal(err)
			}
			a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
			if err != nil {
				t.Fatal(err)
			}
			part := a.Heuristic()
			if part.N < 2 {
				t.Skip("single stage")
			}
			elim, err := SplitOpt(a.G, part, SplitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			noElim, err := SplitOpt(a.G, part, SplitOptions{NoRedundantFlowElim: true})
			if err != nil {
				t.Fatal(err)
			}
			if noElim.NumQueues < elim.NumQueues {
				t.Errorf("ablation has fewer queues (%d) than optimized (%d)",
					noElim.NumQueues, elim.NumQueues)
			}
			runBoth(t, p, noElim)
		})
	}
}

func TestRedundantFlowElimReducesQueues(t *testing.T) {
	// list-of-lists has a value (the inner head r2) consumed by several
	// instructions in the consumer: elimination must collapse them.
	p := workloads.ListOfLists(10, 3)
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Cut after the inner-list head load: its value (r2) feeds three
	// consumer instructions, so elimination collapses three arcs into
	// one queue.
	if a.NumSCCs() != 5 {
		t.Fatalf("unexpected SCC count %d", a.NumSCCs())
	}
	part := &Partitioning{
		G: a.G, Cond: a.Cond, N: 2, Weights: a.Weights,
		Assign: []int{0, 0, 1, 1, 1},
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	elim, err := SplitOpt(a.G, part, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noElim, err := SplitOpt(a.G, part, SplitOptions{NoRedundantFlowElim: true})
	if err != nil {
		t.Fatal(err)
	}
	if noElim.NumQueues <= elim.NumQueues {
		t.Errorf("expected strictly more queues without elimination: %d vs %d",
			noElim.NumQueues, elim.NumQueues)
	}
}

func TestMasterLoopAddsOnlyProtocolFlows(t *testing.T) {
	p := workloads.WC()
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p.F, p.LoopHeader, prof, Config{})
	if err != nil {
		t.Fatal(err)
	}
	part := a.Heuristic()
	plain, err := SplitOpt(a.G, part, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	master, err := SplitOpt(a.G, part, SplitOptions{MasterLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if master.NumQueues != plain.NumQueues+(part.N-1) {
		t.Errorf("master protocol queues: %d vs %d + %d",
			master.NumQueues, plain.NumQueues, part.N-1)
	}
}
