package core

import (
	"errors"
	"testing"

	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// TestDSWPSuiteEquivalence applies automatic DSWP to every Table 1
// workload and validates memory + live-out equivalence of the pipeline —
// the end-to-end correctness statement of the reproduction.
func TestDSWPSuiteEquivalence(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			prof, err := profile.Collect(p.F, p.Options())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if len(tr.Threads) != 2 {
				t.Fatalf("%d threads, want 2", len(tr.Threads))
			}
			runBoth(t, p, tr)
		})
	}
}

// TestDSWPCaseStudyVariants transforms the §5 variants that are supposed
// to transform, and checks gzip bails.
func TestDSWPCaseStudyVariants(t *testing.T) {
	for _, wb := range workloads.CaseStudies() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			prof, err := profile.Collect(p.F, p.Options())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
			switch wb.Name {
			case "164.gzip":
				if !errors.Is(err, ErrSingleSCC) {
					t.Fatalf("gzip: err = %v, want ErrSingleSCC", err)
				}
				return
			case "adpcmdec-spurious":
				// The giant SCC (the §5.2 hyperblock regime) leaves no
				// balanced cut; the heuristic correctly gives up.
				if !errors.Is(err, ErrUnprofitable) {
					t.Fatalf("spurious: err = %v, want ErrUnprofitable", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			runBoth(t, p, tr)
		})
	}
}

// TestHeuristicProfitableOnSuite checks that the automatic pipeline (with
// the profitability gate active) accepts the bulk of the Table 1 loops, as
// in the paper ("DSWP is generally applicable").
func TestHeuristicProfitableOnSuite(t *testing.T) {
	accepted := 0
	for _, wb := range workloads.Table1Suite() {
		p := wb.Build()
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Apply(p.F, p.LoopHeader, prof, Config{}); err == nil {
			accepted++
		} else {
			t.Logf("%s: %v", p.Name, err)
		}
	}
	if accepted < 7 {
		t.Errorf("profitability gate accepted only %d/10 loops", accepted)
	}
}

// TestDSWPTracesBalanced sanity-checks that both threads do real work on a
// few representative loops (the point of the load-balance heuristic).
func TestDSWPTracesBalanced(t *testing.T) {
	for _, name := range []string{"181.mcf", "256.bzip2", "wc"} {
		var wb workloads.Builder
		for _, w := range workloads.Table1Suite() {
			if w.Name == name {
				wb = w
			}
		}
		p := wb.Build()
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
		if err != nil {
			t.Fatal(err)
		}
		opts := p.Options()
		res, err := interp.RunThreads(tr.Threads, opts)
		if err != nil {
			t.Fatal(err)
		}
		s0, s1 := res.Threads[0].Steps, res.Threads[1].Steps
		if s0 == 0 || s1 == 0 {
			t.Errorf("%s: thread steps %d/%d — a stage is empty", name, s0, s1)
		}
	}
}
