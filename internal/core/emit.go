package core

import (
	"fmt"
	"sort"

	"dswp/internal/ir"
)

// emit builds the thread functions: the main thread (the original function
// with the loop replaced by partition P_1's stage plus boundary flows) and
// one auxiliary function per remaining partition.
func (s *splitter) emit() error {
	n := s.p.N
	s.threads = make([]*ir.Function, n)
	s.copies = make([]map[int]*ir.Block, n)

	if err := s.emitMain(); err != nil {
		return err
	}
	for t := 1; t < n; t++ {
		if err := s.emitAux(t); err != nil {
			return err
		}
	}
	return nil
}

// cloneInstr copies an original instruction into thread function nf;
// branch targets are fixed up afterwards.
func cloneInstr(nf *ir.Function, in *ir.Instr) *ir.Instr {
	ni := nf.NewInstr(in.Op)
	ni.Dst = in.Dst
	ni.Src = append([]ir.Reg(nil), in.Src...)
	ni.Imm = in.Imm
	ni.Obj = in.Obj
	ni.Field = in.Field
	ni.Queue = in.Queue
	return ni
}

// emitMain constructs thread 0.
func (s *splitter) emitMain() error {
	nf := ir.NewFunction(s.f.Name)
	nf.Objects = append([]ir.MemObject(nil), s.f.Objects...)
	nf.LiveOuts = append([]ir.Reg(nil), s.f.LiveOuts...)
	nf.NoteReg(s.f.MaxReg())
	s.threads[0] = nf
	s.copies[0] = map[int]*ir.Block{}

	// Create blocks in original layout order: outside blocks verbatim,
	// relevant loop blocks as stage copies, irrelevant loop blocks
	// dropped.
	for bi, b := range s.c.Blocks {
		switch {
		case !s.l.Contains(bi):
			s.outsideCopy[b] = nf.NewBlock(b.Name)
		case s.relevant[0][bi]:
			s.copies[0][bi] = nf.NewBlock(b.Name)
		}
	}

	// Final flows require exit-split blocks: loop exits detour through a
	// block that consumes the live-outs before rejoining original code.
	// The §3 master-loop protocol also terminates the auxiliary threads
	// there.
	finals := s.sortedFinalFlows()
	if len(finals) > 0 || s.opts.MasterLoop {
		targets := map[*ir.Block]bool{}
		for _, e := range s.l.Exits {
			if e[1] < len(s.c.Blocks) {
				targets[s.c.Blocks[e[1]]] = true
			}
		}
		names := make([]*ir.Block, 0, len(targets))
		for b := range targets {
			names = append(names, b)
		}
		sort.Slice(names, func(i, j int) bool { return names[i].ID < names[j].ID })
		for _, y := range names {
			sb := nf.NewBlock("dswp.exit." + y.Name)
			for _, fl := range finals {
				cons := nf.NewInstr(ir.OpConsume)
				cons.Dst = fl.Reg
				cons.Queue = fl.Queue
				sb.Append(cons)
			}
			if s.opts.MasterLoop {
				// Terminate signal: the paper's NULL function pointer.
				z := nf.NewReg()
				cz := nf.NewInstr(ir.OpConst)
				cz.Dst = z
				sb.Append(cz)
				for t := 1; t < s.p.N; t++ {
					prod := nf.NewInstr(ir.OpProduce)
					prod.Src = []ir.Reg{z}
					prod.Queue = s.masterQ[t]
					sb.Append(prod)
				}
			}
			jmp := nf.NewInstr(ir.OpJump)
			jmp.Target = s.outsideCopy[y]
			sb.Append(jmp)
			s.exitSplit[y] = sb
		}
	}

	// Fill outside blocks.
	preheader := s.c.Blocks[s.l.Preheader]
	for bi, b := range s.c.Blocks {
		if s.l.Contains(bi) {
			continue
		}
		nb := s.outsideCopy[b]
		for _, in := range b.Instrs {
			ni := cloneInstr(nf, in)
			if in.Op == ir.OpBranch || in.Op == ir.OpJump {
				var err error
				ni.Target, err = s.mapOutsideTarget(in.Target)
				if err != nil {
					return err
				}
				if in.Op == ir.OpBranch {
					ni.TargetFalse, err = s.mapOutsideTarget(in.TargetFalse)
					if err != nil {
						return err
					}
				}
			}
			// Initial flows are produced at the end of the preheader,
			// just before it enters the loop.
			if b == preheader && in == b.Terminator() {
				s.emitInitialProduces(nb, nf)
			}
			nb.Append(ni)
		}
		if b.Terminator() == nil {
			// Original fallthrough: make the successor explicit, since
			// layout may have changed.
			succs := b.Succs()
			if len(succs) != 1 {
				return fmt.Errorf("dswp: fallthrough block %s without successor", b.Name)
			}
			if b == preheader {
				s.emitInitialProduces(nb, nf)
			}
			target, err := s.mapOutsideTarget(succs[0])
			if err != nil {
				return err
			}
			jmp := nf.NewInstr(ir.OpJump)
			jmp.Target = target
			nb.Append(jmp)
		}
	}

	// Fill the loop stage.
	return s.fillLoopBlocks(0)
}

func (s *splitter) sortedFinalFlows() []Flow {
	var out []Flow
	for _, fl := range s.flows {
		if fl.Pos == FlowFinal {
			out = append(out, fl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Queue < out[j].Queue })
	return out
}

func (s *splitter) emitInitialProduces(nb *ir.Block, nf *ir.Function) {
	if s.opts.MasterLoop {
		// Wake the auxiliary threads: send the stage's "function
		// address" (any non-zero id) on each master queue first.
		one := nf.NewReg()
		c1 := nf.NewInstr(ir.OpConst)
		c1.Dst = one
		c1.Imm = 1
		nb.Append(c1)
		for t := 1; t < s.p.N; t++ {
			prod := nf.NewInstr(ir.OpProduce)
			prod.Src = []ir.Reg{one}
			prod.Queue = s.masterQ[t]
			nb.Append(prod)
		}
	}
	var inits []Flow
	for _, fl := range s.flows {
		if fl.Pos == FlowInitial && fl.Reg != ir.NoReg {
			inits = append(inits, fl)
		}
	}
	sort.Slice(inits, func(i, j int) bool { return inits[i].Queue < inits[j].Queue })
	for _, fl := range inits {
		prod := nf.NewInstr(ir.OpProduce)
		prod.Src = []ir.Reg{fl.Reg}
		prod.Queue = fl.Queue
		nb.Append(prod)
	}
}

// mapOutsideTarget maps a target of an outside-loop terminator: outside
// blocks map to their copies; the loop header maps to the main stage's
// loop entry. Any other loop block as a target would mean an irreducible
// entry, which natural loops preclude.
func (s *splitter) mapOutsideTarget(b *ir.Block) (*ir.Block, error) {
	bi := s.c.Index[b]
	if !s.l.Contains(bi) {
		return s.outsideCopy[b], nil
	}
	if bi == s.l.Header {
		return s.copies[0][bi], nil // header is always relevant
	}
	return nil, fmt.Errorf("dswp: side entry into loop at %s", b.Name)
}

// emitAux constructs auxiliary thread t: entry consumes, the loop stage,
// and an exit block producing finals before returning to the master loop
// (modeled as ret).
func (s *splitter) emitAux(t int) error {
	nf := ir.NewFunction(fmt.Sprintf("%s.dswp%d", s.f.Name, t))
	nf.Objects = append([]ir.MemObject(nil), s.f.Objects...)
	nf.NoteReg(s.f.MaxReg())
	s.threads[t] = nf
	s.copies[t] = map[int]*ir.Block{}

	var master *ir.Block
	if s.opts.MasterLoop {
		master = nf.NewBlock("dswp.master")
	}
	entry := nf.NewBlock("dswp.entry")
	for bi, b := range s.c.Blocks {
		if s.l.Contains(bi) && s.relevant[t][bi] {
			s.copies[t][bi] = nf.NewBlock(b.Name)
		}
	}
	exit := nf.NewBlock("dswp.exit")
	s.copies[t][-1] = exit // sentinel for out-of-loop destinations

	// Entry: consume live-ins, then enter the loop at the header.
	var inits []Flow
	for _, fl := range s.flows {
		if fl.Pos == FlowInitial && fl.To == t && fl.Reg != ir.NoReg {
			inits = append(inits, fl)
		}
	}
	sort.Slice(inits, func(i, j int) bool { return inits[i].Queue < inits[j].Queue })
	for _, fl := range inits {
		cons := nf.NewInstr(ir.OpConsume)
		cons.Dst = fl.Reg
		cons.Queue = fl.Queue
		entry.Append(cons)
	}
	jmp := nf.NewInstr(ir.OpJump)
	jmp.Target = s.copies[t][s.l.Header]
	entry.Append(jmp)

	if err := s.fillLoopBlocks(t); err != nil {
		return err
	}

	// Exit: produce finals, then return — or, under the §3 protocol,
	// loop back to the master queue and wait for the next invocation.
	for _, fl := range s.sortedFinalFlows() {
		if fl.From != t {
			continue
		}
		prod := nf.NewInstr(ir.OpProduce)
		prod.Src = []ir.Reg{fl.Reg}
		prod.Queue = fl.Queue
		exit.Append(prod)
	}
	if s.opts.MasterLoop {
		back := nf.NewInstr(ir.OpJump)
		back.Target = master
		exit.Append(back)

		halt := nf.NewBlock("dswp.halt")
		id := nf.NewReg()
		cons := nf.NewInstr(ir.OpConsume)
		cons.Dst = id
		cons.Queue = s.masterQ[t]
		master.Append(cons)
		br := nf.NewInstr(ir.OpBranch)
		br.Src = []ir.Reg{id}
		br.Target = entry
		br.TargetFalse = halt
		master.Append(br)
		halt.Append(nf.NewInstr(ir.OpRet))
	} else {
		exit.Append(nf.NewInstr(ir.OpRet))
	}
	return nil
}

// fillLoopBlocks places instructions and flows into thread t's copies of
// its relevant loop blocks (§2.2.3 steps 3-4, §2.2.4).
func (s *splitter) fillLoopBlocks(t int) error {
	nf := s.threads[t]
	// Stable iteration over relevant loop blocks in layout order.
	for _, bi := range s.l.BlockList {
		if !s.relevant[t][bi] {
			continue
		}
		b := s.c.Blocks[bi]
		nb := s.copies[t][bi]
		term := b.Terminator()

		for _, in := range b.Instrs {
			if in == term || in.Op == ir.OpJump {
				continue // terminators regenerated below
			}
			if s.p.PartitionOf(in) == t {
				nb.Append(cloneInstr(nf, in))
				s.emitProducesAfter(nb, nf, in, t)
			} else {
				s.emitConsumesAt(nb, nf, in, t)
			}
		}

		if err := s.emitTerminator(nb, nf, b, term, t); err != nil {
			return err
		}
	}
	return nil
}

// emitProducesAfter appends the produces for flows sourced at original
// instruction in (owned by thread t).
func (s *splitter) emitProducesAfter(nb *ir.Block, nf *ir.Function, in *ir.Instr, t int) {
	type qk struct {
		q    int
		kind FlowKind
	}
	var qs []qk
	for k, queues := range s.dataQ {
		if k.src == in {
			for _, q := range queues {
				qs = append(qs, qk{q, FlowData})
			}
		}
	}
	for k, q := range s.syncQ {
		if k.src == in {
			qs = append(qs, qk{q, FlowSync})
		}
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i].q < qs[j].q })
	for _, e := range qs {
		prod := nf.NewInstr(ir.OpProduce)
		prod.Queue = e.q
		if e.kind == FlowData {
			prod.Src = []ir.Reg{in.Dst}
		}
		nb.Append(prod)
	}
}

// emitConsumesAt appends the consumes thread t needs at the position of
// foreign source instruction in — data consumes write the source's
// destination register; sync consumes take a token.
func (s *splitter) emitConsumesAt(nb *ir.Block, nf *ir.Function, in *ir.Instr, t int) {
	for _, q := range s.dataQ[flowKey{in, t}] {
		cons := nf.NewInstr(ir.OpConsume)
		cons.Dst = in.Dst
		cons.Queue = q
		nb.Append(cons)
	}
	if q, ok := s.syncQ[flowKey{in, t}]; ok {
		cons := nf.NewInstr(ir.OpConsume)
		cons.Queue = q
		nb.Append(cons)
	}
}

// emitTerminator regenerates block b's terminator for thread t, fixing
// targets to each thread's closest relevant blocks (§2.2.3 step 4).
func (s *splitter) emitTerminator(nb *ir.Block, nf *ir.Function, b *ir.Block, term *ir.Instr, t int) error {
	bi := s.c.Index[b]
	if term != nil && term.Op == ir.OpBranch {
		br := term
		switch {
		case s.p.PartitionOf(br) == t:
			// Owned branch: produce its flag for duplicating threads
			// first (Figure 2(d): PRODUCE precedes the branch).
			var qs []int
			for k, q := range s.ctrlQ {
				if k.src == br {
					qs = append(qs, q)
				}
			}
			sort.Ints(qs)
			for _, q := range qs {
				prod := nf.NewInstr(ir.OpProduce)
				prod.Src = []ir.Reg{br.Src[0]}
				prod.Queue = q
				nb.Append(prod)
			}
			ni := cloneInstr(nf, br)
			var err error
			if ni.Target, err = s.mapLoopTarget(t, br.Target); err != nil {
				return err
			}
			if ni.TargetFalse, err = s.mapLoopTarget(t, br.TargetFalse); err != nil {
				return err
			}
			nb.Append(ni)
			return nil
		default:
			if q, ok := s.needBr[t][br]; ok {
				// Duplicated branch driven by a consumed flag.
				flag := nf.NewReg()
				cons := nf.NewInstr(ir.OpConsume)
				cons.Dst = flag
				cons.Queue = q
				nb.Append(cons)
				ni := nf.NewInstr(ir.OpBranch)
				ni.Src = []ir.Reg{flag}
				var err error
				if ni.Target, err = s.mapLoopTarget(t, br.Target); err != nil {
					return err
				}
				if ni.TargetFalse, err = s.mapLoopTarget(t, br.TargetFalse); err != nil {
					return err
				}
				nb.Append(ni)
				return nil
			}
			// Unneeded branch: continue at the closest relevant
			// postdominator of this block.
			target, err := s.walkRelevant(t, s.pdom.IDom[bi])
			if err != nil {
				return err
			}
			jmp := nf.NewInstr(ir.OpJump)
			jmp.Target = target
			nb.Append(jmp)
			return nil
		}
	}

	// Jump or fallthrough: single successor.
	succs := b.Succs()
	if len(succs) != 1 {
		return fmt.Errorf("dswp: loop block %s has %d successors without a branch", b.Name, len(succs))
	}
	target, err := s.mapLoopTarget(t, succs[0])
	if err != nil {
		return err
	}
	jmp := nf.NewInstr(ir.OpJump)
	jmp.Target = target
	nb.Append(jmp)
	return nil
}

// mapLoopTarget maps an original branch target (from inside the loop) to
// thread t's CFG: the target's copy if relevant, else the copy of its
// closest relevant postdominator; targets outside the loop go to the
// thread's exit (aux) or through the final-flow split block (main).
func (s *splitter) mapLoopTarget(t int, target *ir.Block) (*ir.Block, error) {
	return s.walkRelevant(t, s.c.Index[target])
}

// walkRelevant walks the postdominator tree from CFG node x until it finds
// a block relevant to thread t or leaves the loop.
func (s *splitter) walkRelevant(t, x int) (*ir.Block, error) {
	for hops := 0; hops <= s.c.N(); hops++ {
		if x < 0 || x == s.c.Exit {
			return s.outOfLoopDest(t, nil)
		}
		if !s.l.Contains(x) {
			return s.outOfLoopDest(t, s.c.Blocks[x])
		}
		if s.relevant[t][x] {
			return s.copies[t][x], nil
		}
		next := s.pdom.IDom[x]
		if next == x {
			return s.outOfLoopDest(t, nil)
		}
		x = next
	}
	return nil, fmt.Errorf("dswp: postdominator walk did not terminate")
}

// outOfLoopDest resolves a loop-leaving destination for thread t.
func (s *splitter) outOfLoopDest(t int, outside *ir.Block) (*ir.Block, error) {
	if t > 0 {
		return s.copies[t][-1], nil // aux threads: local exit block
	}
	if outside == nil {
		return nil, fmt.Errorf("dswp: main thread loop exit without destination")
	}
	if sb, ok := s.exitSplit[outside]; ok {
		return sb, nil
	}
	return s.outsideCopy[outside], nil
}
