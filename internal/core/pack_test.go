package core

import (
	"testing"

	"dswp/internal/ir"
	"dswp/internal/workloads"
)

// TestPackFlowsStats pins the packing outcome on the pointer-chase list
// traversal: the transform emits five queues (control, loop data, initial
// flows, final sum), and packing coalesces the two same-point pairs —
// producer-loop {control, data} and the initial-value pair — leaving the
// multi-site final flow unpacked. 5 queues -> 3, 4 flows in 2 packets.
func TestPackFlowsStats(t *testing.T) {
	p := workloads.ListTraversal(500)
	plain := applyDSWP(t, p, Config{SkipProfitability: true})
	packed := applyDSWP(t, p, Config{SkipProfitability: true, PackFlows: true})

	if plain.NumQueues != 5 {
		t.Fatalf("unpacked NumQueues = %d, want 5 (test workload drifted)", plain.NumQueues)
	}
	if packed.NumQueues != 3 {
		t.Errorf("packed NumQueues = %d, want 3", packed.NumQueues)
	}
	st := packed.Stats
	if st == nil {
		t.Fatal("packed transform has no PassStats")
	}
	if st.PackedFlows != 4 {
		t.Errorf("PackedFlows = %d, want 4", st.PackedFlows)
	}
	if st.FlowPackets != 2 {
		t.Errorf("FlowPackets = %d, want 2", st.FlowPackets)
	}
	if st.UnpackedFlows != 1 {
		t.Errorf("UnpackedFlows = %d, want 1", st.UnpackedFlows)
	}
	if st.PackedFlows+st.UnpackedFlows != plain.NumQueues {
		t.Errorf("PackedFlows+UnpackedFlows = %d, want pre-pack queue count %d",
			st.PackedFlows+st.UnpackedFlows, plain.NumQueues)
	}
	if st.QueuesMerged != plain.NumQueues-packed.NumQueues {
		t.Errorf("QueuesMerged = %d, want %d", st.QueuesMerged, plain.NumQueues-packed.NumQueues)
	}
	if st.Queues != packed.NumQueues {
		t.Errorf("Stats.Queues = %d, want NumQueues %d", st.Queues, packed.NumQueues)
	}
}

// TestPackFlowsShape checks the packed IR invariants the runtime's batched
// dispatch relies on: dense queue numbering, every Flow remapped into
// range, and each merged queue's produces and consumes forming contiguous
// same-queue runs (that is what becomes one TryProduceN/TryConsumeN).
func TestPackFlowsShape(t *testing.T) {
	p := workloads.ListTraversal(500)
	tr := applyDSWP(t, p, Config{SkipProfitability: true, PackFlows: true})

	used := map[int]bool{}
	for _, fn := range tr.Threads {
		fn.Instrs(func(in *ir.Instr) {
			if in.Op.IsFlow() {
				if in.Queue < 0 || in.Queue >= tr.NumQueues {
					t.Errorf("flow op queue %d out of range [0,%d)", in.Queue, tr.NumQueues)
				}
				used[in.Queue] = true
			}
		})
	}
	if len(used) != tr.NumQueues {
		t.Errorf("IR uses %d distinct queues, NumQueues = %d", len(used), tr.NumQueues)
	}
	for _, f := range tr.Flows {
		if f.Queue < 0 || f.Queue >= tr.NumQueues {
			t.Errorf("flow record queue %d out of range [0,%d)", f.Queue, tr.NumQueues)
		}
	}

	// Count flows per queue; merged queues carry >1 flow and their static
	// ops must be contiguous runs in both endpoint blocks.
	flowsPer := map[int]int{}
	for _, f := range tr.Flows {
		flowsPer[f.Queue]++
	}
	merged := 0
	for q, n := range flowsPer {
		if n < 2 {
			continue
		}
		merged++
		for _, fn := range tr.Threads {
			for _, b := range fn.Blocks {
				for _, op := range []ir.Op{ir.OpProduce, ir.OpConsume} {
					first, last, count := -1, -1, 0
					for i, in := range b.Instrs {
						if in.Op == op && in.Queue == q {
							if first == -1 {
								first = i
							}
							last = i
							count++
						}
					}
					if count > 1 && last-first != count-1 {
						t.Errorf("queue %d: %v ops not contiguous in %s (span %d for %d ops)",
							q, op, b.Name, last-first+1, count)
					}
				}
			}
		}
	}
	if merged == 0 {
		t.Error("expected at least one merged (multi-flow) queue on list traversal")
	}
}

// TestPackFlowsEquivalenceSuite runs every Table 1 workload through the
// packing transform and checks memory + live-out equivalence against
// sequential execution — packing must never change results, only queue
// traffic shape.
func TestPackFlowsEquivalenceSuite(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		t.Run(wb.Name, func(t *testing.T) {
			p := wb.Build()
			tr := applyDSWP(t, p, Config{SkipProfitability: true, PackFlows: true})
			runBoth(t, p, tr)
		})
	}
}

// TestPackFlowsWithMasterLoop checks packing composes with the §3 master
// loop protocol: protocol queues have multiple static sites and must be
// left alone, while in-loop flows still pack.
func TestPackFlowsWithMasterLoop(t *testing.T) {
	p := workloads.ListTraversal(300)
	tr := applyDSWP(t, p, Config{SkipProfitability: true, MasterLoop: true, PackFlows: true})
	runBoth(t, p, tr)
	if tr.Stats != nil && tr.Stats.PackedFlows == 0 {
		t.Error("expected in-loop flows to pack under the master-loop protocol")
	}
}

// TestPackFlowsNoCandidates: the list-of-lists pipeline interleaves its
// flows with foreign flow ops at every program point, so nothing packs and
// the transform must be byte-for-byte the unpacked one (same queue count,
// zero packets reported).
func TestPackFlowsNoCandidates(t *testing.T) {
	p := workloads.ListOfLists(40, 6)
	plain := applyDSWP(t, p, Config{SkipProfitability: true})
	packed := applyDSWP(t, p, Config{SkipProfitability: true, PackFlows: true})
	if packed.NumQueues != plain.NumQueues {
		t.Errorf("NumQueues = %d, want unchanged %d", packed.NumQueues, plain.NumQueues)
	}
	if st := packed.Stats; st != nil {
		if st.PackedFlows != 0 || st.FlowPackets != 0 || st.QueuesMerged != 0 {
			t.Errorf("expected no packing, got packed=%d packets=%d merged=%d",
				st.PackedFlows, st.FlowPackets, st.QueuesMerged)
		}
		if st.UnpackedFlows != plain.NumQueues {
			t.Errorf("UnpackedFlows = %d, want %d", st.UnpackedFlows, plain.NumQueues)
		}
	}
	runBoth(t, p, packed)
}
