package core

import (
	"testing"

	"dswp/internal/ir"
	"dswp/internal/profile"
	"dswp/internal/workloads"
)

// Structural tests of the emitted code: the placement rules of §2.2.3-4.

func transformList(t *testing.T) (*workloads.Program, *Transformed) {
	t.Helper()
	p := workloads.ListOfLists(20, 4)
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// indexIn returns the position of the first instruction satisfying pred in
// block b, or -1.
func indexIn(b *ir.Block, pred func(*ir.Instr) bool) int {
	for i, in := range b.Instrs {
		if pred(in) {
			return i
		}
	}
	return -1
}

func TestProduceImmediatelyFollowsDataSource(t *testing.T) {
	_, tr := transformList(t)
	main := tr.Threads[0]
	// Every loop data flow's produce sits right after an instruction
	// defining the flowed register (Figure 2(d): C then PRODUCE).
	for _, fl := range tr.Flows {
		if fl.Kind != FlowData || fl.Pos != FlowLoop {
			continue
		}
		found := false
		main.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpProduce && in.Queue == fl.Queue {
				b := in.Block
				i := indexIn(b, func(x *ir.Instr) bool { return x == in })
				if i > 0 {
					prev := b.Instrs[i-1]
					if prev.Dst == fl.Reg || prev.Op == ir.OpProduce {
						found = true
					}
				}
			}
		})
		if !found {
			t.Errorf("queue %d: produce not adjacent to its defining instruction", fl.Queue)
		}
	}
}

func TestControlProducePrecedesBranch(t *testing.T) {
	_, tr := transformList(t)
	main := tr.Threads[0]
	for _, fl := range tr.Flows {
		if fl.Kind != FlowControl || fl.Pos != FlowLoop {
			continue
		}
		main.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpProduce && in.Queue == fl.Queue {
				b := in.Block
				term := b.Terminator()
				if term == nil || term.Op != ir.OpBranch {
					t.Errorf("queue %d: flag produce not in a branch block", fl.Queue)
					return
				}
				// Figure 2(d): PRODUCE [q] = p precedes "br p, ...".
				i := indexIn(b, func(x *ir.Instr) bool { return x == in })
				j := indexIn(b, func(x *ir.Instr) bool { return x == term })
				if i > j {
					t.Errorf("queue %d: flag produced after the branch", fl.Queue)
				}
				if in.Src[0] != term.Src[0] {
					t.Errorf("queue %d: flag register %s != branch predicate %s",
						fl.Queue, in.Src[0], term.Src[0])
				}
			}
		})
	}
}

func TestConsumerDuplicatedBranchConsumesFlag(t *testing.T) {
	_, tr := transformList(t)
	aux := tr.Threads[1]
	// Every control flow into thread 1 ends as consume->branch.
	for _, fl := range tr.Flows {
		if fl.Kind != FlowControl || fl.To != 1 || fl.Pos != FlowLoop {
			continue
		}
		ok := false
		aux.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpConsume && in.Queue == fl.Queue {
				b := in.Block
				term := b.Terminator()
				if term != nil && term.Op == ir.OpBranch && term.Src[0] == in.Dst {
					ok = true
				}
			}
		})
		if !ok {
			t.Errorf("queue %d: no duplicated branch consuming the flag\n%s", fl.Queue, aux)
		}
	}
}

func TestConsumeWritesSourceRegister(t *testing.T) {
	_, tr := transformList(t)
	aux := tr.Threads[1]
	for _, fl := range tr.Flows {
		if fl.Kind != FlowData || fl.Pos != FlowLoop || fl.To != 1 {
			continue
		}
		found := false
		aux.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpConsume && in.Queue == fl.Queue && in.Dst == fl.Reg {
				found = true
			}
		})
		if !found {
			t.Errorf("queue %d: consumer does not write source register %s", fl.Queue, fl.Reg)
		}
	}
}

func TestMainThreadKeepsOutsideCode(t *testing.T) {
	p, tr := transformList(t)
	main := tr.Threads[0]
	// The preheader and exit block names survive.
	if main.BlockByName("BB1") == nil {
		t.Error("preheader missing from main thread")
	}
	if main.BlockByName("BB7") == nil {
		t.Error("exit block missing from main thread")
	}
	if main.Name != p.F.Name {
		t.Errorf("main thread renamed: %s", main.Name)
	}
	// Live-outs preserved.
	if len(main.LiveOuts) != len(p.F.LiveOuts) {
		t.Error("live-outs lost")
	}
}

func TestAuxThreadHasNoForeignInstructions(t *testing.T) {
	_, tr := transformList(t)
	part := tr.Partition
	// Instructions assigned to thread 0 must not be duplicated in thread
	// 1 (only consumes/duplicated branches stand in for them).
	ownOps := map[ir.Op]bool{}
	for _, in := range part.G.Instrs {
		if part.PartitionOf(in) == 0 && in.Op == ir.OpLoad {
			ownOps[in.Op] = true
		}
	}
	aux := tr.Threads[1]
	aux.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			// thread 1's loads must be its own partition's loads.
			matched := false
			for _, orig := range part.G.Instrs {
				if part.PartitionOf(orig) == 1 && orig.Op == ir.OpLoad &&
					orig.Dst == in.Dst && orig.Imm == in.Imm && orig.Obj == in.Obj {
					matched = true
				}
			}
			if !matched {
				t.Errorf("foreign load in aux thread: %s", in)
			}
		}
	})
}

func TestQueuesWithinSynchronizationArrayLimit(t *testing.T) {
	for _, wb := range workloads.Table1Suite() {
		p := wb.Build()
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Apply(p.F, p.LoopHeader, prof, Config{SkipProfitability: true})
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumQueues > 256 {
			t.Errorf("%s: %d queues exceed the 256-queue synchronization array", p.Name, tr.NumQueues)
		}
	}
}
