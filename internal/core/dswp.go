package core

import (
	"fmt"

	"dswp/internal/cfg"
	"dswp/internal/dep"
	"dswp/internal/graph"
	"dswp/internal/ir"
	"dswp/internal/profile"
)

// Config tunes the DSWP driver.
type Config struct {
	// NumThreads is the pipeline depth target t (Definition 1 condition
	// 1). Default 2, matching the paper's dual-core evaluation.
	NumThreads int
	// Margin is the required estimated win for the profitability test;
	// 0.02 demands the heaviest stage (plus flow overhead) be at least
	// 2% cheaper than single-threaded execution.
	Margin float64
	// IncludeCallLatency feeds annotated callee latencies into SCC
	// weights. The paper's implementation lacked this ("can lead to poor
	// partitioning decisions for loops with function calls"); leave
	// false to reproduce that behaviour.
	IncludeCallLatency bool
	// Dep configures dependence-graph construction.
	Dep dep.Options
	// SkipProfitability forces the transformation through even when the
	// heuristic predicts no win (used when measuring forced partitions).
	SkipProfitability bool
	// MasterLoop emits the §3 runtime protocol (see SplitOptions).
	MasterLoop bool
	// PackFlows coalesces same-point flows between a thread pair into
	// multi-word packets on shared queues (see SplitOptions.PackFlows).
	PackFlows bool
}

func (c Config) withDefaults() Config {
	if c.NumThreads == 0 {
		c.NumThreads = 2
	}
	if c.Margin == 0 {
		c.Margin = 0.02
	}
	return c
}

// LoopAnalysis bundles the analysis products of one loop — Figure 3 lines
// 1-4 — shared by the automatic driver, the best-partition search, and the
// reporting tools.
type LoopAnalysis struct {
	F       *ir.Function
	CFG     *cfg.CFG
	Loop    *cfg.Loop
	G       *dep.Graph
	Cond    *graph.Condensation
	Weights []int64
	Prof    *profile.Profile
	Config  Config
}

// Analyze builds the dependence graph and DAG_SCC for the loop headed by
// loopHeader. prof must profile the same function instance.
func Analyze(f *ir.Function, loopHeader string, prof *profile.Profile, config Config) (*LoopAnalysis, error) {
	config = config.withDefaults()
	c, l, err := cfg.LoopForHeader(f, loopHeader)
	if err != nil {
		return nil, err
	}
	g, err := dep.Build(f, c, l, config.Dep)
	if err != nil {
		return nil, err
	}
	cond := g.Condense()
	weights := SCCWeights(g, cond, prof, config.IncludeCallLatency)
	return &LoopAnalysis{
		F: f, CFG: c, Loop: l, G: g,
		Cond: cond, Weights: weights,
		Prof: prof, Config: config,
	}, nil
}

// NumSCCs reports the DAG_SCC size — Table 1's "SCCs" column.
func (a *LoopAnalysis) NumSCCs() int { return len(a.Cond.Comps) }

// Heuristic runs the TPP heuristic at the configured thread count.
func (a *LoopAnalysis) Heuristic() *Partitioning {
	return HeuristicPartition(a.G, a.Cond, a.Weights, a.Config.NumThreads)
}

// Enumerate lists candidate two-stage partitionings, capped at max.
func (a *LoopAnalysis) Enumerate(max int) []*Partitioning {
	return EnumeratePartitionings(a.G, a.Cond, a.Weights, max)
}

// Transform splits the loop under partitioning p.
func (a *LoopAnalysis) Transform(p *Partitioning) (*Transformed, error) {
	return SplitOpt(a.G, p, SplitOptions{MasterLoop: a.Config.MasterLoop, PackFlows: a.Config.PackFlows})
}

// Apply is the paper's Figure 3 driver: analyze, bail on a single SCC,
// partition with the heuristic, bail if unprofitable, then split and
// insert flows.
func Apply(f *ir.Function, loopHeader string, prof *profile.Profile, config Config) (*Transformed, error) {
	config = config.withDefaults()
	a, err := Analyze(f, loopHeader, prof, config)
	if err != nil {
		return nil, err
	}
	if a.NumSCCs() == 1 {
		return nil, fmt.Errorf("%w (loop %s)", ErrSingleSCC, loopHeader)
	}
	p := a.Heuristic()
	if p.N == 1 {
		return nil, fmt.Errorf("%w (loop %s: heuristic found one stage)", ErrUnprofitable, loopHeader)
	}
	if !config.SkipProfitability && !Profitable(p, prof, config.Margin) {
		return nil, fmt.Errorf("%w (loop %s)", ErrUnprofitable, loopHeader)
	}
	return a.Transform(p)
}
