package core

import (
	"fmt"
	"sort"

	"dswp/internal/cfg"
	"dswp/internal/dep"
	"dswp/internal/ir"
	"dswp/internal/obs"
)

// FlowKind classifies flows per §2.2.4: data value, branch-direction flag,
// or a value-less synchronization token for memory/system ordering.
type FlowKind uint8

const (
	FlowData FlowKind = iota
	FlowControl
	FlowSync
)

func (k FlowKind) String() string {
	switch k {
	case FlowData:
		return "data"
	case FlowControl:
		return "control"
	case FlowSync:
		return "sync"
	}
	return "?"
}

// FlowPos classifies flows by loop position per §2.2.4: inside the loop,
// live-in delivery before it, or live-out delivery after it.
type FlowPos uint8

const (
	FlowLoop FlowPos = iota
	FlowInitial
	FlowFinal
)

func (p FlowPos) String() string {
	switch p {
	case FlowLoop:
		return "loop"
	case FlowInitial:
		return "initial"
	case FlowFinal:
		return "final"
	}
	return "?"
}

// Flow records one produce/consume pair and its queue.
type Flow struct {
	Queue  int
	Kind   FlowKind
	Pos    FlowPos
	Source *ir.Instr // original instruction (nil for initial flows)
	Reg    ir.Reg    // register carried (NoReg for control/sync)
	From   int       // producing thread
	To     int       // consuming thread
}

// Transformed is the result of applying DSWP to one loop.
type Transformed struct {
	Original  *ir.Function
	Threads   []*ir.Function // Threads[0] is the main thread
	Partition *Partitioning
	Flows     []Flow
	NumQueues int
	// Stats is the pass's compile-time self-report (dependence graph,
	// DAG_SCC, partition balance, flow breakdown), for -stats output.
	Stats *obs.PassStats
	// RegOwner maps each original-function register to the thread holding
	// its authoritative value at iteration boundaries: the partition of
	// the register's in-loop definition (output dependences never cross
	// partitions, so there is exactly one such thread), or thread 0 for
	// registers only defined outside the loop. Thread functions preserve
	// the original register numbering, so RegOwner lets the runtime merge
	// per-thread register files back into the original's architectural
	// file for checkpointing (runtime.CheckpointSpec).
	RegOwner []int
}

// SplitOptions tunes code generation.
type SplitOptions struct {
	// NoRedundantFlowElim disables redundant flow elimination (§2.2.4:
	// "Redundant flow elimination can be used to avoid communicating a
	// value more than once inside the loop"): every cross-thread data
	// dependence arc gets its own queue, produce, and consume. Used by
	// the ablation benchmark to quantify the optimization.
	NoRedundantFlowElim bool

	// MasterLoop emits the paper's §3 runtime protocol: each auxiliary
	// thread wraps its stage in a master loop that blocks on a master
	// queue, runs the stage when activated, and returns when it receives
	// the terminate signal ("composed of a NULL function pointer"; we
	// send 0). The main thread activates the stages before entering the
	// loop and terminates them after leaving it. This models creating
	// the auxiliary thread once, at program start, and reusing it across
	// loop invocations.
	MasterLoop bool

	// PackFlows coalesces flows between the same thread pair at the same
	// program point into multi-word packets on a shared queue (see
	// pack.go), letting the runtime amortize one synchronization over
	// each packet. Packing never changes results — only the queue layout
	// and communication cost.
	PackFlows bool
}

// FlowCounts returns the number of queues per position, Table 1's
// "# Flows Init. / Loop / Final" columns.
func (t *Transformed) FlowCounts() (initial, loop, final int) {
	for _, f := range t.Flows {
		switch f.Pos {
		case FlowInitial:
			initial++
		case FlowLoop:
			loop++
		case FlowFinal:
			final++
		}
	}
	return
}

// splitter carries the state of one split.
type splitter struct {
	g *dep.Graph
	p *Partitioning
	f *ir.Function
	c *cfg.CFG
	l *cfg.Loop

	pdom *cfg.DomTree

	nextQueue int
	flows     []Flow

	// Loop flows, deduplicated per (source, consumer thread) — the
	// paper's redundant flow elimination.
	dataQ map[flowKey][]int
	syncQ map[flowKey]int
	ctrlQ map[flowKey]int

	// Per-thread structures.
	relevant []map[int]bool      // thread -> cfg block idx -> relevant
	needBr   []map[*ir.Instr]int // thread -> needed foreign branch -> queue
	threads  []*ir.Function
	copies   []map[int]*ir.Block // thread -> cfg block idx -> copy

	// Main-thread extras.
	outsideCopy map[*ir.Block]*ir.Block
	exitSplit   map[*ir.Block]*ir.Block

	initialQ map[regThread]int // live-in reg flows
	finalQ   map[regThread]int // live-out reg flows
	masterQ  map[int]int       // §3 master queue per aux thread

	// redundantElim counts cross-thread dependences satisfied by an
	// already-allocated flow (§2.2.4 redundant flow elimination).
	redundantElim int

	opts SplitOptions
}

type flowKey struct {
	src *ir.Instr
	to  int
}

type regThread struct {
	reg ir.Reg
	t   int
}

// Split performs §2.2.3 (code splitting) and §2.2.4 (flow insertion) for a
// validated partitioning.
func Split(g *dep.Graph, p *Partitioning) (*Transformed, error) {
	return SplitOpt(g, p, SplitOptions{})
}

// SplitOpt is Split with code-generation options.
func SplitOpt(g *dep.Graph, p *Partitioning, opts SplitOptions) (*Transformed, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &splitter{
		g:           g,
		p:           p,
		f:           g.Fn,
		c:           g.CFG,
		l:           g.Loop,
		pdom:        g.CFG.PostDominators(),
		dataQ:       map[flowKey][]int{},
		syncQ:       map[flowKey]int{},
		ctrlQ:       map[flowKey]int{},
		initialQ:    map[regThread]int{},
		finalQ:      map[regThread]int{},
		masterQ:     map[int]int{},
		outsideCopy: map[*ir.Block]*ir.Block{},
		exitSplit:   map[*ir.Block]*ir.Block{},
		opts:        opts,
	}
	for _, bi := range s.l.BlockList {
		if t := s.c.Blocks[bi].Terminator(); t != nil && t.Op == ir.OpRet {
			return nil, fmt.Errorf("dswp: ret inside loop is not supported")
		}
	}
	s.collectLoopFlows()
	s.computeRelevance()
	s.collectControlFlows()
	s.collectBoundaryFlows()
	if err := s.emit(); err != nil {
		return nil, err
	}
	tr := &Transformed{
		Original:  s.f,
		Threads:   s.threads,
		Partition: p,
		Flows:     s.flows,
		NumQueues: s.nextQueue,
		Stats:     transformStats(s),
		RegOwner:  s.regOwners(),
	}
	for _, th := range tr.Threads {
		// Post-split cleanup, as §2.2.3 anticipates ("subsequent code
		// layout optimizations"): thread the jump chains the retargeting
		// step leaves behind and drop unreachable blocks.
		ir.SimplifyCFG(th)
		if err := th.Verify(); err != nil {
			return nil, fmt.Errorf("dswp: emitted invalid thread: %w", err)
		}
	}
	if opts.PackFlows {
		// Packing runs after CFG simplification so runs are measured on
		// the final block layout, and re-verifies every thread.
		packFlows(tr)
		for _, th := range tr.Threads {
			if err := th.Verify(); err != nil {
				return nil, fmt.Errorf("dswp: flow packing produced invalid thread: %w", err)
			}
		}
	}
	// Checkpointability is decided on the *final* thread bodies — after
	// CFG simplification and flow packing, which can remove or rename
	// blocks — using the same test the runtime applies: every thread must
	// retain its copy of the loop header (the epoch barrier anchor) and a
	// register-ownership map must exist. When it fails, supervised runs
	// execute unprotected (resume restarts from scratch); the stat makes
	// that blind spot visible instead of silent.
	tr.Stats.Checkpointable = len(tr.RegOwner) > 0
	for _, th := range tr.Threads {
		found := false
		for _, b := range th.Blocks {
			if b.Name == tr.Stats.Loop {
				found = true
				break
			}
		}
		if !found {
			tr.Stats.Checkpointable = false
			break
		}
	}
	return tr, nil
}

// regOwners computes Transformed.RegOwner: the partition of each
// register's in-loop definition, defaulting to thread 0 (which executes
// the preheader and thus owns every live-in).
func (s *splitter) regOwners() []int {
	owner := make([]int, s.f.MaxReg()+1)
	for _, bi := range s.l.BlockList {
		for _, in := range s.c.Blocks[bi].Instrs {
			if in.Dst != ir.NoReg {
				owner[in.Dst] = s.p.PartitionOf(in)
			}
		}
	}
	return owner
}

func (s *splitter) newQueue() int {
	q := s.nextQueue
	s.nextQueue++
	return q
}

// collectLoopFlows walks the dependence arcs and allocates queues for
// cross-thread data and memory-sync dependences. A sync flow is dropped
// when a data flow with the same (source, consumer) exists: the data value
// already orders the consumer after the source (redundant flow
// elimination).
func (s *splitter) collectLoopFlows() {
	// Deterministic order: sort arcs by (source ID, target thread).
	arcs := append([]dep.Arc(nil), s.g.Arcs...)
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].From.ID != arcs[j].From.ID {
			return arcs[i].From.ID < arcs[j].From.ID
		}
		return s.p.PartitionOf(arcs[i].To) < s.p.PartitionOf(arcs[j].To)
	})
	for _, a := range arcs {
		pf, pt := s.p.PartitionOf(a.From), s.p.PartitionOf(a.To)
		if pf == pt {
			continue
		}
		if pf > pt {
			// Validate() precludes this for SCC-crossing arcs.
			panic("dswp: backward dependence between partitions")
		}
		key := flowKey{a.From, pt}
		switch a.Kind {
		case dep.ArcData:
			if len(s.dataQ[key]) == 0 || s.opts.NoRedundantFlowElim {
				q := s.newQueue()
				s.dataQ[key] = append(s.dataQ[key], q)
				s.flows = append(s.flows, Flow{
					Queue: q, Kind: FlowData, Pos: FlowLoop,
					Source: a.From, Reg: a.From.Dst, From: pf, To: pt,
				})
			} else {
				s.redundantElim++ // value already flows to this thread
			}
		case dep.ArcMemory:
			if _, ok := s.syncQ[key]; !ok {
				s.syncQ[key] = -1 // queue assigned later unless subsumed
			}
		case dep.ArcControl:
			// Handled via the relevant-block closure, which needs the
			// full relation (including branch needs that have no direct
			// arc into the thread).
		case dep.ArcOutput:
			panic("dswp: output dependence crossing partitions")
		}
	}
	// Materialize sync queues not subsumed by a data flow.
	keys := make([]flowKey, 0, len(s.syncQ))
	for k := range s.syncQ {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src.ID != keys[j].src.ID {
			return keys[i].src.ID < keys[j].src.ID
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		if _, ok := s.dataQ[k]; ok {
			// The data flow already orders the consumer after the source;
			// the sync token would be redundant.
			delete(s.syncQ, k)
			s.redundantElim++
			continue
		}
		q := s.newQueue()
		s.syncQ[k] = q
		s.flows = append(s.flows, Flow{
			Queue: q, Kind: FlowSync, Pos: FlowLoop,
			Source: k.src, Reg: ir.NoReg, From: s.p.PartitionOf(k.src), To: k.to,
		})
	}
}

// computeRelevance computes each thread's relevant basic blocks (§2.2.3
// step 1): blocks holding its instructions, blocks holding sources of
// dependences entering it (where consumes are placed), the loop header
// (each iteration's entry point), closed under the extended control
// dependence relation so the thread can replicate the branch decisions
// those blocks depend on.
func (s *splitter) computeRelevance() {
	n := s.p.N
	s.relevant = make([]map[int]bool, n)
	s.needBr = make([]map[*ir.Instr]int, n)
	for t := 0; t < n; t++ {
		rel := map[int]bool{s.l.Header: true}
		for _, in := range s.g.Instrs {
			if s.p.PartitionOf(in) == t {
				rel[s.c.Index[in.Block]] = true
			}
		}
		addSrc := func(key flowKey) {
			if key.to == t {
				rel[s.c.Index[key.src.Block]] = true
			}
		}
		for k := range s.dataQ {
			addSrc(k)
		}
		for k := range s.syncQ {
			addSrc(k)
		}
		// Closure over block-level control dependence.
		work := make([]int, 0, len(rel))
		for bi := range rel {
			work = append(work, bi)
		}
		for len(work) > 0 {
			bi := work[len(work)-1]
			work = work[:len(work)-1]
			for _, ab := range s.g.BlockCD[bi] {
				if !rel[ab] {
					rel[ab] = true
					work = append(work, ab)
				}
			}
		}
		s.relevant[t] = rel
		s.needBr[t] = map[*ir.Instr]int{}
	}
}

// collectControlFlows allocates branch-flag queues: thread t needs branch
// X when a relevant block of t is control dependent on X and X is assigned
// elsewhere.
func (s *splitter) collectControlFlows() {
	for t := 0; t < s.p.N; t++ {
		needed := map[*ir.Instr]bool{}
		for bi := range s.relevant[t] {
			for _, ab := range s.g.BlockCD[bi] {
				if br := s.c.Blocks[ab].Terminator(); br != nil && br.Op == ir.OpBranch {
					if s.p.PartitionOf(br) != t {
						needed[br] = true
					}
				}
			}
		}
		brs := make([]*ir.Instr, 0, len(needed))
		for br := range needed {
			brs = append(brs, br)
		}
		sort.Slice(brs, func(i, j int) bool { return brs[i].ID < brs[j].ID })
		for _, br := range brs {
			q := s.newQueue()
			s.needBr[t][br] = q
			s.ctrlQ[flowKey{br, t}] = q
			s.flows = append(s.flows, Flow{
				Queue: q, Kind: FlowControl, Pos: FlowLoop,
				Source: br, Reg: ir.NoReg, From: s.p.PartitionOf(br), To: t,
			})
		}
	}
}

// collectBoundaryFlows allocates initial (live-in) and final (live-out)
// flows (§2.2.4 positions 2 and 3).
func (s *splitter) collectBoundaryFlows() {
	for _, r := range s.g.LiveInRegs() {
		needs := map[int]bool{}
		for _, u := range s.g.LiveInUses[r] {
			if t := s.p.PartitionOf(u); t > 0 {
				needs[t] = true
			}
		}
		for t := 1; t < s.p.N; t++ {
			if !needs[t] {
				continue
			}
			q := s.newQueue()
			s.initialQ[regThread{r, t}] = q
			s.flows = append(s.flows, Flow{
				Queue: q, Kind: FlowData, Pos: FlowInitial, Reg: r, From: 0, To: t,
			})
		}
	}
	for _, r := range s.g.LiveOutRegs() {
		defs := s.g.LiveOutDefs[r]
		if len(defs) == 0 {
			continue
		}
		t := s.p.PartitionOf(defs[0])
		for _, d := range defs[1:] {
			if s.p.PartitionOf(d) != t {
				panic("dswp: live-out definitions scattered across threads")
			}
		}
		if t <= 0 {
			continue // defined in the main thread: no flow needed
		}
		q := s.newQueue()
		s.finalQ[regThread{r, t}] = q
		s.flows = append(s.flows, Flow{
			Queue: q, Kind: FlowData, Pos: FlowFinal, Reg: r, From: t, To: 0,
		})
		// The owning thread may define r only on some paths (or on no
		// iteration at all); its final produce must then forward the
		// register's pre-loop value, so deliver it as an initial flow.
		if _, ok := s.initialQ[regThread{r, t}]; !ok {
			iq := s.newQueue()
			s.initialQ[regThread{r, t}] = iq
			s.flows = append(s.flows, Flow{
				Queue: iq, Kind: FlowData, Pos: FlowInitial, Reg: r, From: 0, To: t,
			})
		}
	}
	if s.opts.MasterLoop {
		for t := 1; t < s.p.N; t++ {
			q := s.newQueue()
			s.masterQ[t] = q
			s.flows = append(s.flows, Flow{
				Queue: q, Kind: FlowControl, Pos: FlowInitial, Reg: ir.NoReg, From: 0, To: t,
			})
		}
	}
}
