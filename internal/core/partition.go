// Package core implements the paper's contribution: the DSWP algorithm of
// Figure 3. It consumes the loop dependence graph (package dep), finds the
// DAG_SCC, chooses a valid partitioning with the load-balance heuristic of
// §2.2.2, splits the code per §2.2.3, and inserts produce/consume flows per
// §2.2.4.
package core

import (
	"errors"
	"fmt"
	"math"

	"dswp/internal/dep"
	"dswp/internal/graph"
	"dswp/internal/ir"
	"dswp/internal/profile"
)

// ErrSingleSCC is returned when the dependence graph is one big recurrence
// (Figure 3 step 3): no pipeline is extractable without speculation.
var ErrSingleSCC = errors.New("dswp: dependence graph has a single SCC")

// ErrUnprofitable is returned when the TPP heuristic estimates no
// partitioning beats the single-threaded loop (Figure 3 step 6).
var ErrUnprofitable = errors.New("dswp: no profitable partitioning found")

// Partitioning is a valid partitioning of the DAG_SCC (Definition 1): a
// sequence P_1..P_n of SCC sets with all DAG arcs flowing forward.
type Partitioning struct {
	G    *dep.Graph
	Cond *graph.Condensation

	// Assign maps SCC index -> partition index (0-based; partition 0 is
	// the main thread's stage).
	Assign []int
	// N is the number of partitions (pipeline stages/threads).
	N int
	// Weights holds the estimated dynamic cycles of each SCC.
	Weights []int64
}

// PartitionOf returns the partition of a loop instruction.
func (p *Partitioning) PartitionOf(in *ir.Instr) int {
	idx, ok := p.G.IndexOf[in]
	if !ok {
		return -1
	}
	return p.Assign[p.Cond.CompOf[idx]]
}

// StageWeights sums SCC weights per partition.
func (p *Partitioning) StageWeights() []int64 {
	w := make([]int64, p.N)
	for scc, part := range p.Assign {
		w[part] += p.Weights[scc]
	}
	return w
}

// Validate checks Definition 1: every SCC in exactly one partition in
// [0,N), no empty partition, and every DAG_SCC arc u->v with
// Assign[u] <= Assign[v].
func (p *Partitioning) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("dswp: %d partitions", p.N)
	}
	if len(p.Assign) != p.Cond.DAG.N() {
		return fmt.Errorf("dswp: %d assignments for %d SCCs", len(p.Assign), p.Cond.DAG.N())
	}
	seen := make([]bool, p.N)
	for scc, part := range p.Assign {
		if part < 0 || part >= p.N {
			return fmt.Errorf("dswp: SCC %d assigned to partition %d of %d", scc, part, p.N)
		}
		seen[part] = true
	}
	for part, ok := range seen {
		if !ok {
			return fmt.Errorf("dswp: partition %d is empty", part)
		}
	}
	for u := 0; u < p.Cond.DAG.N(); u++ {
		for _, v := range p.Cond.DAG.Succs(u) {
			if p.Assign[u] > p.Assign[v] {
				return fmt.Errorf("dswp: backward arc SCC %d (P%d) -> SCC %d (P%d)",
					u, p.Assign[u], v, p.Assign[v])
			}
		}
	}
	return nil
}

// SCCWeights estimates per-SCC dynamic cycles from the profile: the sum
// over member instructions of count x latency (§2.2.2). Produce/consume
// costs are added separately during profitability estimation.
func SCCWeights(g *dep.Graph, cond *graph.Condensation, prof *profile.Profile, includeCallLatency bool) []int64 {
	w := make([]int64, len(cond.Comps))
	for ci, comp := range cond.Comps {
		for _, v := range comp {
			w[ci] += prof.Weight(g.Instrs[v], includeCallLatency)
		}
	}
	return w
}

// HeuristicPartition runs the paper's TPP load-balance heuristic for
// nThreads pipeline stages: walk the DAG_SCC maintaining the candidate set
// (nodes whose predecessors are all assigned), repeatedly take the
// heaviest candidate — breaking ties in favour of candidates that reduce
// the current partition's outgoing dependences — and close the current
// partition once its share of total estimated cycles is reached.
func HeuristicPartition(g *dep.Graph, cond *graph.Condensation, weights []int64, nThreads int) *Partitioning {
	n := cond.DAG.N()
	if nThreads < 1 {
		nThreads = 1
	}
	total := int64(0)
	for _, w := range weights {
		total += w
	}

	preds := cond.DAG.Preds()
	unassignedPreds := make([]int, n)
	for v := 0; v < n; v++ {
		unassignedPreds[v] = len(preds[v])
	}
	assigned := make([]bool, n)
	assign := make([]int, n)

	candidate := func(v int) bool { return !assigned[v] && unassignedPreds[v] == 0 }

	// outgoingGain(v, cur): number of DAG arcs from the current partition
	// into v — picking v removes those outgoing dependences.
	outgoingGain := func(v, cur int) int {
		gain := 0
		for _, p := range preds[v] {
			if assigned[p] && assign[p] == cur {
				gain++
			}
		}
		return gain
	}

	perThread := float64(total) / float64(nThreads)
	cur := 0
	var curWeight int64
	for done := 0; done < n; done++ {
		best := -1
		for v := 0; v < n; v++ {
			if !candidate(v) {
				continue
			}
			if best == -1 {
				best = v
				continue
			}
			switch {
			case weights[v] > weights[best]:
				best = v
			case weights[v] == weights[best] &&
				outgoingGain(v, cur) > outgoingGain(best, cur):
				best = v
			}
		}
		if best == -1 {
			panic("dswp: no candidate in a DAG — cycle in condensation?")
		}
		remaining := n - done // nodes left including best
		// "Gets close to" the per-thread share: close the current
		// partition *before* assigning when overshooting costs more
		// balance than undershooting, provided later partitions can
		// still be populated.
		if cur+1 < nThreads && curWeight > 0 && remaining > nThreads-cur-1 {
			over := float64(curWeight+weights[best]) - perThread
			under := perThread - float64(curWeight)
			if over > under {
				cur++
				curWeight = 0
			}
		}
		assign[best] = cur
		assigned[best] = true
		curWeight += weights[best]
		for _, s := range cond.DAG.Succs(best) {
			unassignedPreds[s]--
		}
		if cur+1 < nThreads && n-done-1 >= nThreads-cur-1 && n-done-1 > 0 &&
			float64(curWeight) >= perThread {
			cur++
			curWeight = 0
		}
	}

	p := &Partitioning{G: g, Cond: cond, Assign: assign, N: cur + 1, Weights: weights}
	if err := p.Validate(); err != nil {
		panic("dswp: heuristic produced invalid partitioning: " + err.Error())
	}
	return p
}

// DefaultFlowCostFactor is the estimated cycle cost of one dynamic
// produce or consume occurrence. On a wide in-order core, flow ops mostly
// fill spare M-unit slots, so the effective cost is a fraction of a cycle
// (four M ports -> 1/4).
const DefaultFlowCostFactor = 0.25

// FlowCost estimates the produce/consume overhead each stage pays under p,
// in dynamic occurrences, charged to both the producing and the consuming
// stage. Used by the profitability test (§2.2.2: "the algorithm estimates
// whether or not it will be profitable by considering the cost of the
// produce and consume instructions").
func FlowCost(p *Partitioning, prof *profile.Profile) []int64 {
	cost := make([]int64, p.N)
	type key struct {
		src *ir.Instr
		to  int
	}
	counted := map[key]bool{}
	for _, a := range p.G.Arcs {
		pf, pt := p.PartitionOf(a.From), p.PartitionOf(a.To)
		if pf == pt || pf < 0 || pt < 0 {
			continue
		}
		k := key{a.From, pt}
		if counted[k] {
			continue
		}
		counted[k] = true
		c := prof.Count(a.From)
		cost[pf] += c
		cost[pt] += c
	}
	return cost
}

// Profitable estimates whether partitioning p beats single-threaded
// execution: the pipeline is limited by its heaviest stage including flow
// overhead (occurrences scaled by DefaultFlowCostFactor); it must undercut
// the total single-threaded weight by margin (e.g. 0.05 demands a 5%
// estimated win).
func Profitable(p *Partitioning, prof *profile.Profile, margin float64) bool {
	if p.N < 2 {
		return false
	}
	stage := p.StageWeights()
	flows := FlowCost(p, prof)
	var total int64
	var maxStage float64
	for i := range stage {
		total += stage[i]
		if s := float64(stage[i]) + float64(flows[i])*DefaultFlowCostFactor; s > maxStage {
			maxStage = s
		}
	}
	return maxStage < float64(total)*(1.0-margin)
}

// EnumeratePartitionings lists valid two-stage partitionings of the
// DAG_SCC — each proper, non-empty order ideal as P_1 — capped at max.
// This reproduces the paper's "best manually directed" search, which
// iterated over partitionings and measured each.
func EnumeratePartitionings(g *dep.Graph, cond *graph.Condensation, weights []int64, max int) []*Partitioning {
	ideals, _ := cond.DAG.Ideals(max)
	var out []*Partitioning
	for _, ideal := range ideals {
		sz := 0
		for _, in := range ideal {
			if in {
				sz++
			}
		}
		if sz == 0 || sz == len(ideal) {
			continue
		}
		assign := make([]int, len(ideal))
		for v, in := range ideal {
			if !in {
				assign[v] = 1
			}
		}
		p := &Partitioning{G: g, Cond: cond, Assign: assign, N: 2, Weights: weights}
		if err := p.Validate(); err != nil {
			panic("dswp: enumerated invalid partitioning: " + err.Error())
		}
		out = append(out, p)
	}
	return out
}

// BalanceScore reports the weight imbalance of p in [0,1]: 0 is perfectly
// balanced. Used to pre-rank enumerated partitionings before simulating.
func BalanceScore(p *Partitioning) float64 {
	stage := p.StageWeights()
	var total, maxStage int64
	for _, s := range stage {
		total += s
		if s > maxStage {
			maxStage = s
		}
	}
	if total == 0 {
		return 0
	}
	ideal := float64(total) / float64(p.N)
	return math.Abs(float64(maxStage)-ideal) / float64(total)
}
