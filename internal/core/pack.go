package core

import (
	"sort"

	"dswp/internal/ir"
)

// Flow packing (SplitOptions.PackFlows) coalesces multiple flows between
// the same (producer thread, consumer thread) pair at the same program
// point into one multi-word packet on a single shared queue. The runtime
// then retires each packet with one batched queue operation — one atomic
// publish per packet on the ring substrate — instead of one synchronization
// per value, which is the compiler half of making produce/consume as cheap
// as the paper's synchronization array assumes.
//
// Soundness rests on never changing the relative order of flow operations
// within a block:
//
//   - Only queues with exactly one static produce site and one static
//     consume site are candidates (multi-site queues — final flows of
//     multi-exit loops, master-loop queues — are excluded).
//   - A packet is a run of candidate produces to the same consumer thread
//     with only non-flow instructions between them. The earlier produces
//     sink past those gap instructions to join the last one; a gap that
//     defines a register some earlier produce reads ends the run (the sink
//     would change the produced value). Sinking a produce adds ordering at
//     the consumer (its value arrives with the packet) and removes none,
//     and since no flow op is crossed, the producer/consumer flow-op order
//     isomorphism that makes the split deadlock-free is preserved at every
//     queue capacity >= 1.
//   - The matching consumes must already be contiguous in the consumer
//     block; they are permuted into the packet's value order, which is
//     legal because adjacent consumes of distinct queues with distinct
//     destination registers commute.
//
// After merging, queue numbers are compacted and Transformed.Flows,
// NumQueues, and PassStats (packed/unpacked flow counts) are updated.

// packSite is one static flow-op location in a thread function.
type packSite struct {
	thread int
	block  *ir.Block
	idx    int
}

// packet is one packing decision, captured before any rewriting: the
// produce run in program order, the matching consumes permuted into the
// same order, and the original queue number of each member (queues[0]
// becomes the packet's shared queue).
type packet struct {
	prods  []*ir.Instr
	cons   []*ir.Instr
	queues []int
}

func packFlows(tr *Transformed) {
	numQBefore := tr.NumQueues
	prodSites := make([][]packSite, numQBefore)
	consSites := make([][]packSite, numQBefore)
	for ti, fn := range tr.Threads {
		for _, b := range fn.Blocks {
			for i, in := range b.Instrs {
				switch in.Op {
				case ir.OpProduce:
					prodSites[in.Queue] = append(prodSites[in.Queue], packSite{ti, b, i})
				case ir.OpConsume:
					consSites[in.Queue] = append(consSites[in.Queue], packSite{ti, b, i})
				}
			}
		}
	}
	candidate := make([]bool, numQBefore)
	for q := range candidate {
		candidate[q] = len(prodSites[q]) == 1 && len(consSites[q]) == 1 &&
			prodSites[q][0].thread != consSites[q][0].thread
	}

	// Decision phase: scan every block for packable produce runs against
	// the immutable site snapshot.
	var packets []packet
	for _, fn := range tr.Threads {
		for _, b := range fn.Blocks {
			var run []*ir.Instr
			runTo := -1
			srcRead := map[ir.Reg]bool{}
			flush := func() {
				if len(run) >= 2 {
					if p, ok := matchConsumes(run, consSites); ok {
						packets = append(packets, p)
					}
				}
				run = run[:0]
				runTo = -1
				srcRead = map[ir.Reg]bool{}
			}
			for _, in := range b.Instrs {
				switch {
				case in.Op == ir.OpProduce && candidate[in.Queue]:
					to := consSites[in.Queue][0].thread
					if runTo != -1 && to != runTo {
						flush()
					}
					run = append(run, in)
					runTo = to
					for _, r := range in.Src {
						srcRead[r] = true
					}
				case in.Op.IsFlow():
					// A foreign flow op (any consume, or a produce on a
					// multi-site queue) must never be crossed.
					flush()
				default:
					// A gap instruction the earlier produces would sink
					// past: legal unless it defines a register one of
					// them reads.
					if len(run) > 0 && in.Dst != ir.NoReg && srcRead[in.Dst] {
						flush()
					}
				}
			}
			flush()
		}
	}
	if len(packets) == 0 {
		finishPackStats(tr, numQBefore, 0, 0)
		return
	}

	// Application phase, by instruction pointer so packets in the same
	// block cannot invalidate each other (packet instruction sets are
	// disjoint by construction).
	for _, p := range packets {
		shared := p.queues[0]
		inPack := make(map[*ir.Instr]bool, len(p.prods))
		for _, in := range p.prods {
			inPack[in] = true
		}
		// Producer block: sink the run's produces to the last one's slot.
		pb := p.prods[0].Block
		last := p.prods[len(p.prods)-1]
		rebuilt := make([]*ir.Instr, 0, len(pb.Instrs))
		for _, in := range pb.Instrs {
			switch {
			case in == last:
				for _, pr := range p.prods {
					pr.Queue = shared
					rebuilt = append(rebuilt, pr)
				}
			case inPack[in]:
				// moved down to last's slot
			default:
				rebuilt = append(rebuilt, in)
			}
		}
		pb.Instrs = rebuilt
		// Consumer block: permute the contiguous consume slice into
		// packet order and retarget it at the shared queue.
		cb := p.cons[0].Block
		inCons := make(map[*ir.Instr]bool, len(p.cons))
		for _, in := range p.cons {
			inCons[in] = true
		}
		lo := -1
		for i, in := range cb.Instrs {
			if inCons[in] {
				lo = i
				break
			}
		}
		for i, in := range p.cons {
			in.Queue = shared
			cb.Instrs[lo+i] = in
		}
	}

	// Compact queue numbering across threads and flows. Merged queues
	// first map to their packet's shared queue, then everything renumbers
	// densely.
	sharedOf := map[int]int{}
	packedFlows := 0
	for _, p := range packets {
		packedFlows += len(p.queues)
		for _, q := range p.queues {
			sharedOf[q] = p.queues[0]
		}
	}
	used := map[int]bool{}
	for _, fn := range tr.Threads {
		fn.Instrs(func(in *ir.Instr) {
			if in.Op.IsFlow() {
				used[in.Queue] = true
			}
		})
	}
	olds := make([]int, 0, len(used))
	for q := range used {
		olds = append(olds, q)
	}
	sort.Ints(olds)
	renum := make(map[int]int, len(olds))
	for i, q := range olds {
		renum[q] = i
	}
	for _, fn := range tr.Threads {
		fn.Instrs(func(in *ir.Instr) {
			if in.Op.IsFlow() {
				in.Queue = renum[in.Queue]
			}
		})
	}
	for fi := range tr.Flows {
		f := &tr.Flows[fi]
		q := f.Queue
		if sh, ok := sharedOf[q]; ok {
			q = sh
		}
		f.Queue = renum[q]
	}
	tr.NumQueues = len(olds)
	finishPackStats(tr, numQBefore, packedFlows, len(packets))
}

// matchConsumes checks the consumer side of a candidate produce run: every
// matching consume must sit in one thread, one block, on contiguous
// instruction slots, with pairwise-distinct destination registers (NoReg
// excepted), so the slice can be permuted into the packet's value order.
func matchConsumes(run []*ir.Instr, consSites [][]packSite) (packet, bool) {
	first := consSites[run[0].Queue][0]
	idxs := make([]int, len(run))
	cons := make([]*ir.Instr, len(run))
	queues := make([]int, len(run))
	seenDst := map[ir.Reg]bool{}
	for i, pr := range run {
		s := consSites[pr.Queue][0]
		if s.thread != first.thread || s.block != first.block {
			return packet{}, false
		}
		c := s.block.Instrs[s.idx]
		if c.Dst != ir.NoReg {
			if seenDst[c.Dst] {
				return packet{}, false
			}
			seenDst[c.Dst] = true
		}
		idxs[i] = s.idx
		cons[i] = c
		queues[i] = pr.Queue
	}
	sorted := append([]int(nil), idxs...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			return packet{}, false
		}
	}
	return packet{prods: append([]*ir.Instr(nil), run...), cons: cons, queues: queues}, true
}

// finishPackStats records the packing outcome in the pass self-report.
func finishPackStats(tr *Transformed, numQBefore, packedFlows, numPackets int) {
	if tr.Stats == nil {
		return
	}
	tr.Stats.PackedFlows = packedFlows
	tr.Stats.UnpackedFlows = numQBefore - packedFlows
	tr.Stats.FlowPackets = numPackets
	tr.Stats.QueuesMerged = numQBefore - tr.NumQueues
	tr.Stats.Queues = tr.NumQueues
}
