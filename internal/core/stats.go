package core

import (
	"dswp/internal/dep"
	"dswp/internal/graph"
	"dswp/internal/obs"
)

// depStats fills the analysis half of a PassStats report: dependence-graph
// and DAG_SCC shape, before any partitioning decision.
func depStats(g *dep.Graph, cond *graph.Condensation) *obs.PassStats {
	st := &obs.PassStats{
		Fn:         g.Fn.Name,
		Loop:       g.CFG.Blocks[g.Loop.Header].Name,
		LoopInstrs: len(g.Instrs),
		Arcs:       len(g.Arcs),
		ArcsByKind: map[string]int{},
		SCCs:       len(cond.Comps),
	}
	for _, a := range g.Arcs {
		st.ArcsByKind[a.Kind.String()]++
		if a.Carried {
			st.CarriedArcs++
		}
	}
	// Comps are in topological order (sources first), so SCCSizes reads
	// top-down like the paper's DAG_SCC figures.
	st.SCCSizes = make([]int, len(cond.Comps))
	for i, c := range cond.Comps {
		st.SCCSizes[i] = len(c)
	}
	return st
}

// Stats reports the analysis-only statistics: what Table 1 calls the loop
// size and SCC structure, available even when DSWP bails out (single SCC,
// unprofitable). Partition and flow fields stay zero; PassStats renders
// that as "analysis only".
func (a *LoopAnalysis) Stats() *obs.PassStats {
	return depStats(a.G, a.Cond)
}

// transformStats completes a PassStats with the partitioning and flow
// outcome of one split.
func transformStats(s *splitter) *obs.PassStats {
	st := depStats(s.g, s.p.Cond)
	st.Threads = s.p.N
	st.StageWeights = s.p.StageWeights()
	total := int64(0)
	max := int64(0)
	for _, w := range st.StageWeights {
		total += w
		if w > max {
			max = w
		}
	}
	if total > 0 {
		st.BalanceRatio = float64(max) * float64(s.p.N) / float64(total)
	}
	st.Flows = len(s.flows)
	st.FlowsByKind = map[string]int{}
	st.FlowsByPos = map[string]int{}
	for _, f := range s.flows {
		st.FlowsByKind[f.Kind.String()]++
		st.FlowsByPos[f.Pos.String()]++
	}
	st.Queues = s.nextQueue
	st.RedundantFlowsEliminated = s.redundantElim
	return st
}
