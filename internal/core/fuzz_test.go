package core

import (
	"context"
	"time"

	"dswp/internal/supervisor"
	"fmt"
	"testing"
	"testing/quick"

	"dswp/internal/interp"
	"dswp/internal/ir"
	"dswp/internal/profile"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
)

// Random-loop fuzzing: generate structured random loops (counted, with
// random ALU DAGs, nested diamonds, masked-address loads/stores, and an
// iteration-private read-modify-write array) and check that every
// enumerated DSWP partitioning computes exactly the single-threaded
// result. This is the transformation's strongest correctness evidence:
// any placement, flow, or retargeting bug shows up as divergence or
// deadlock on some seed.

type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// genLoop builds a random, terminating loop program from a seed.
func genLoop(seed uint64) (*ir.Function, *interp.Memory) {
	rng := &fuzzRNG{s: seed | 1}
	b := ir.NewBuilder(fmt.Sprintf("fuzz_%d", seed))
	scratch := b.F.AddObject("scratch", 256)
	private := b.F.AddObject("private", 128)
	b.F.Objects[private].IterPrivate = true

	nRegs := 4 + rng.intn(5)
	regs := make([]ir.Reg, nRegs)
	for i := range regs {
		regs[i] = b.F.NewReg()
	}
	anyReg := func() ir.Reg { return regs[rng.intn(nRegs)] }

	pre := b.Block("pre")
	header := b.F.NewBlock("header")
	// Body block chain is created on demand.
	exit := b.F.NewBlock("exit")

	bases := interp.Layout(b.F)
	iters := int64(8 + rng.intn(40))
	i := b.F.NewReg()

	b.SetBlock(pre)
	b.ConstTo(i, 0)
	limit := b.Const(iters)
	one := b.Const(1)
	mask := b.Const(255)
	pmask := b.Const(127)
	scratchBase := b.Const(bases[0])
	privBase := b.Const(bases[1])
	for _, r := range regs {
		b.ConstTo(r, int64(rng.intn(1000))-500)
	}
	b.Jump(header)

	b.SetBlock(header)
	p := b.CmpLT(i, limit)
	body := b.F.NewBlock("body")
	b.Br(p, body, exit)
	b.SetBlock(body)

	aluOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpCmpLT, ir.OpCmpEQ, ir.OpDiv, ir.OpRem, ir.OpShr}

	emitALU := func() {
		op := aluOps[rng.intn(len(aluOps))]
		b.BinTo(op, anyReg(), anyReg(), anyReg())
	}
	emitLoad := func() {
		a := b.Bin(ir.OpAnd, anyReg(), mask)
		addr := b.Add(scratchBase, a)
		b.LoadTo(anyReg(), addr, 0, scratch)
	}
	emitStore := func() {
		a := b.Bin(ir.OpAnd, anyReg(), mask)
		addr := b.Add(scratchBase, a)
		b.Store(anyReg(), addr, 0, scratch)
	}
	// Iteration-private read-modify-write of private[i & 127].
	emitPrivateRMW := func() {
		a := b.Bin(ir.OpAnd, i, pmask)
		addr := b.Add(privBase, a)
		v := b.Load(addr, 0, private)
		nv := b.Bin(ir.OpXor, v, anyReg())
		b.Store(nv, addr, 0, private)
	}
	blockCounter := 0
	emitDiamond := func(depth int) {}
	emitDiamond = func(depth int) {
		cond := b.Bin(ir.OpCmpLT, anyReg(), anyReg())
		blockCounter++
		thenB := b.F.NewBlock(fmt.Sprintf("then%d", blockCounter))
		elseB := b.F.NewBlock(fmt.Sprintf("else%d", blockCounter))
		joinB := b.F.NewBlock(fmt.Sprintf("join%d", blockCounter))
		b.Br(cond, thenB, elseB)

		b.SetBlock(thenB)
		for k := 0; k < 1+rng.intn(3); k++ {
			emitALU()
		}
		if depth > 0 && rng.intn(2) == 0 {
			emitDiamond(depth - 1)
		}
		b.Jump(joinB)

		b.SetBlock(elseB)
		for k := 0; k < 1+rng.intn(3); k++ {
			emitALU()
		}
		if rng.intn(3) == 0 {
			emitStore()
		}
		b.Jump(joinB)

		b.SetBlock(joinB)
	}

	nStmts := 3 + rng.intn(8)
	for s := 0; s < nStmts; s++ {
		switch rng.intn(6) {
		case 0:
			emitLoad()
		case 1:
			emitStore()
		case 2:
			emitDiamond(1)
		case 3:
			emitPrivateRMW()
		default:
			emitALU()
		}
	}
	b.AddTo(i, i, one)
	b.Jump(header)

	b.SetBlock(exit)
	b.Ret()
	b.F.LiveOuts = append([]ir.Reg{}, regs[:2+rng.intn(nRegs-1)]...)
	b.F.MustVerify()

	mem := interp.MemoryFor(b.F)
	for a := bases[0]; a < bases[0]+256; a++ {
		mem.Set(a, int64(rng.intn(512))-256)
	}
	for a := bases[1]; a < bases[1]+128; a++ {
		mem.Set(a, int64(rng.intn(512))-256)
	}
	return b.F, mem
}

// checkSeed runs one fuzz case: baseline vs every enumerated partitioning
// at 2 threads, plus the heuristic at 3.
func checkSeed(t *testing.T, seed uint64) {
	t.Helper()
	f, mem := genLoop(seed)
	opts := interp.Options{Mem: mem, MaxSteps: 50_000_000}
	base, err := interp.Run(f, opts)
	if err != nil {
		t.Fatalf("seed %d: baseline: %v", seed, err)
	}
	prof, err := profile.Collect(f, opts)
	if err != nil {
		t.Fatalf("seed %d: profile: %v", seed, err)
	}
	for _, threads := range []int{2, 3} {
		a, err := Analyze(f, "header", prof, Config{NumThreads: threads})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		if a.NumSCCs() < 2 {
			return
		}
		parts := a.Enumerate(12)
		parts = append(parts, a.Heuristic())
		for pi, part := range parts {
			if part.N < 2 {
				continue
			}
			tr, err := a.Transform(part)
			if err != nil {
				t.Fatalf("seed %d t%d part %d: transform: %v", seed, threads, pi, err)
			}
			multi, err := interp.RunThreads(tr.Threads, opts)
			if err != nil {
				for ti, th := range tr.Threads {
					t.Logf("thread %d:\n%s", ti, th)
				}
				t.Fatalf("seed %d t%d part %d (assign %v): run: %v", seed, threads, pi, part.Assign, err)
			}
			if d := base.Mem.Diff(multi.Mem); d != -1 {
				t.Fatalf("seed %d t%d part %d: memory diverges at %d (assign %v)\noriginal:\n%s",
					seed, threads, pi, d, part.Assign, f)
			}
			for r, v := range base.LiveOuts {
				if multi.LiveOuts[r] != v {
					t.Fatalf("seed %d t%d part %d: live-out %s %d != %d (assign %v)",
						seed, threads, pi, r, multi.LiveOuts[r], v, part.Assign)
				}
			}
		}
		if threads != 2 {
			continue
		}
		// True-concurrency differential check: the heuristic partition
		// must also compute the sequential result under the goroutine
		// runtime — real interleavings, bounded queues (down to one
		// slot), both communication substrates, compiler-side flow
		// packing, and seed-derived fault injection — not just under the
		// interpreter's friendly round-robin schedule.
		hp := a.Heuristic()
		if hp.N < 2 {
			continue
		}
		tr, err := a.Transform(hp)
		if err != nil {
			t.Fatalf("seed %d: runtime transform: %v", seed, err)
		}
		trPacked, err := SplitOpt(a.G, hp, SplitOptions{PackFlows: true})
		if err != nil {
			t.Fatalf("seed %d: packed transform: %v", seed, err)
		}
		for _, v := range []struct {
			tag string
			tr  *Transformed
		}{{"", tr}, {"packed ", trPacked}} {
			for _, qcap := range []int{1, 8} {
				for _, kind := range []queue.Kind{queue.KindChannel, queue.KindRing} {
					ropts := rt.Options{QueueCap: qcap, Queue: kind, Mem: mem, MaxSteps: 50_000_000}
					if qcap == 1 {
						ropts.Faults = rt.RandomFaults(seed, len(v.tr.Threads), v.tr.NumQueues)
					}
					run, err := rt.Run(v.tr.Threads, ropts)
					if err != nil {
						for ti, th := range v.tr.Threads {
							t.Logf("thread %d:\n%s", ti, th)
						}
						t.Fatalf("seed %d: %sruntime %s cap %d: %v", seed, v.tag, kind, qcap, err)
					}
					if d := base.Mem.Diff(run.Mem); d != -1 {
						t.Fatalf("seed %d: %sruntime %s cap %d: memory diverges at %d (assign %v)\noriginal:\n%s",
							seed, v.tag, kind, qcap, d, hp.Assign, f)
					}
					for r, v2 := range base.LiveOuts {
						if run.LiveOuts[r] != v2 {
							t.Fatalf("seed %d: %sruntime %s cap %d: live-out %s %d != %d",
								seed, v.tag, kind, qcap, r, run.LiveOuts[r], v2)
						}
					}
				}
			}
		}
	}
}

func TestFuzzDSWPEquivalenceFixedSeeds(t *testing.T) {
	// A deterministic sweep so failures reproduce trivially.
	for seed := uint64(1); seed <= 60; seed++ {
		checkSeed(t, seed)
	}
}

func TestFuzzDSWPEquivalenceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		checkSeed(t, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzGeneratorIsDeterministic pins the generator so failing seeds
// stay reproducible across runs.
func TestFuzzGeneratorIsDeterministic(t *testing.T) {
	f1, _ := genLoop(12345)
	f2, _ := genLoop(12345)
	if f1.String() != f2.String() {
		t.Fatal("generator not deterministic")
	}
}

// --- Supervised-execution fuzzing -----------------------------------------
//
// FuzzSupervised drives the fault-tolerant supervisor over the same random
// loop generator the equivalence fuzz uses, with the failure mode and its
// trigger point fuzzed alongside the program shape: clean runs, transient
// faults inside the retry budget, permanent faults, and stage panics. The
// invariant is the supervisor's whole contract: a nil error and the
// bit-identical sequential state, whatever was injected.

// fuzzSupervisedOne runs one supervised fuzz case.
func fuzzSupervisedOne(t *testing.T, seed uint64, mode uint8, knob uint16) {
	t.Helper()
	f, mem := genLoop(seed)
	opts := interp.Options{Mem: mem, MaxSteps: 50_000_000}
	base, err := interp.Run(f, opts)
	if err != nil {
		t.Fatalf("seed %d: baseline: %v", seed, err)
	}
	prof, err := profile.Collect(f, opts)
	if err != nil {
		t.Fatalf("seed %d: profile: %v", seed, err)
	}
	a, err := Analyze(f, "header", prof, Config{NumThreads: 2})
	if err != nil {
		t.Fatalf("seed %d: analyze: %v", seed, err)
	}
	if a.NumSCCs() < 2 {
		return
	}
	hp := a.Heuristic()
	if hp.N < 2 {
		return
	}
	// Two knob bits pick the interop corner: communication substrate and
	// compiler-side flow packing, crossed with every fault mode below —
	// ring queues must survive fault plans, retry, checkpoint barriers,
	// stage panics, and sequential resume exactly like channels do.
	kind := queue.KindChannel
	if knob&1 != 0 {
		kind = queue.KindRing
	}
	tr, err := SplitOpt(a.G, hp, SplitOptions{PackFlows: knob&2 != 0})
	if err != nil {
		t.Fatalf("seed %d: transform: %v", seed, err)
	}

	plan := &rt.FaultPlan{Seed: seed}
	switch mode % 4 {
	case 1:
		plan.QueueFault = map[int]rt.QueueFaultSpec{int(knob) % tr.NumQueues: {
			Class: rt.FaultTransient, Every: int64(1 + knob%128), Fails: 1 + int(knob%3)}}
	case 2:
		plan.QueueFault = map[int]rt.QueueFaultSpec{int(knob) % tr.NumQueues: {
			Class: rt.FaultPermanent, Every: int64(1 + knob%256)}}
	case 3:
		plan.ThreadPanic = map[int]int64{int(knob) % len(tr.Threads): int64(1 + knob%2048)}
	}

	res, rep, err := supervisor.Run(context.Background(), supervisor.Pipeline{
		Threads: tr.Threads, Original: f, LoopHeader: "header",
		RegOwner: tr.RegOwner, Mem: mem,
	}, supervisor.Policy{
		QueueCap:        1 + int(knob%8),
		Queue:           kind,
		CheckpointEvery: int64(1 + knob%16),
		MaxSteps:        50_000_000,
		Retry: rt.RetryPolicy{MaxAttempts: 4,
			Backoff: time.Microsecond, MaxBackoff: 20 * time.Microsecond},
		Faults: plan,
	})
	if err != nil {
		t.Fatalf("seed %d mode %d knob %d: supervised run failed: %v (attempt failure: %v)",
			seed, mode%4, knob, err, rep.Failure)
	}
	if d := base.Mem.Diff(res.Mem); d != -1 {
		t.Fatalf("seed %d mode %d knob %d: memory diverges at %d (resumed=%v from iter %d)\noriginal:\n%s",
			seed, mode%4, knob, d, rep.Resumed, rep.ResumeIter, f)
	}
	for r, v := range base.LiveOuts {
		if res.LiveOuts[r] != v {
			t.Fatalf("seed %d mode %d knob %d: live-out %s = %d, want %d (resumed=%v)",
				seed, mode%4, knob, r, res.LiveOuts[r], v, rep.Resumed)
		}
	}
}

// FuzzSupervised is the native fuzz entry; `go test -fuzz=FuzzSupervised`
// mutates from a corpus seeded with the fixed-seed sweep below.
func FuzzSupervised(f *testing.F) {
	for seed := uint64(1); seed <= 10; seed++ {
		for mode := uint8(0); mode < 4; mode++ {
			f.Add(seed, mode, uint16(64+7*uint16(mode)))
		}
	}
	f.Fuzz(func(t *testing.T, seed uint64, mode uint8, knob uint16) {
		fuzzSupervisedOne(t, seed, mode, knob)
	})
}

// TestFuzzSupervisedFixedSeeds pins the corpus so every failure mode runs
// deterministically in plain `go test`.
func TestFuzzSupervisedFixedSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		for mode := uint8(0); mode < 4; mode++ {
			fuzzSupervisedOne(t, seed, mode, uint16(seed*31+uint64(mode)*7))
		}
	}
}
