package ckptstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemStore keeps encoded records in a mutex-guarded map. It is the
// default store for in-process engines: commits survive a failed attempt
// (engine retry reads them back) but not the process. Records round-trip
// through the codec on every Put/Get, so the binary encoding is exercised
// even when no FileStore is configured.
type MemStore struct {
	mu      sync.Mutex
	records map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{records: make(map[string][]byte)}
}

// Put implements Store.
func (m *MemStore) Put(e *Entry) error {
	if e.Key == "" {
		return fmt.Errorf("ckptstore: empty key")
	}
	rec := Encode(e)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.records == nil {
		return fmt.Errorf("ckptstore: store closed")
	}
	m.records[e.Key] = rec
	return nil
}

// Get implements Store.
func (m *MemStore) Get(key string) (*Entry, error) {
	m.mu.Lock()
	rec, ok := m.records[key]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return Decode(rec)
}

// Delete implements Store.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	delete(m.records, key)
	m.mu.Unlock()
	return nil
}

// Keys implements Store.
func (m *MemStore) Keys() ([]string, error) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.records))
	for k := range m.records {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	m.records = nil
	m.mu.Unlock()
	return nil
}

// Corrupt overwrites the record under key with garbage bytes that fail
// CRC validation. Test and chaos hook: it simulates the torn write a real
// crash could leave behind, without needing a filesystem.
func (m *MemStore) Corrupt(key string) {
	m.mu.Lock()
	if rec, ok := m.records[key]; ok {
		bad := append([]byte(nil), rec...)
		bad[len(bad)/2] ^= 0xFF
		m.records[key] = bad
	}
	m.mu.Unlock()
}

const fileExt = ".ckpt"

// ErrDurabilityLost reports that a key's durable commits have been
// disabled after a write-path failure (ENOSPC, failed fsync, failed
// rename): the store refuses further IO for that key instead of paying a
// doomed temp-file+fsync cycle on every checkpoint period. Wrapped by
// the Put error that detects the condition and returned bare by every
// Put after it; the in-memory checkpoint latch is unaffected, so the
// request keeps being served from the memory path — durability degrades,
// correctness does not.
var ErrDurabilityLost = errors.New("ckptstore: durability lost")

// FileStore persists one encoded record per key in a directory, so
// checkpoints survive process death. Writes go through a temp file in the
// same directory, fsync, then an atomic rename over the final name — a
// crash mid-Put leaves either the previous record or a temp file the next
// open garbage-collects, never a half-written record under the real name.
// File names are the fnv64a hash of the key (keys are request-derived and
// not filesystem-safe); the key inside the record is authoritative and
// verified on every read.
//
// All IO goes through an FS (fs.go) wrapped with the ckptstore/file/*
// failpoint sites, so chaos schedules can inject disk faults into a
// production-shaped store.
type FileStore struct {
	dir string
	fs  FS
	// Logf, when set, receives one line per durability-degrading event;
	// set it before first use (dswpd points it at stdout).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	names    map[string]string   // key -> filename
	degraded map[string]struct{} // keys whose durable commits are disabled
	corrupt  int
	closed   bool
}

// OpenFile opens (creating if needed) a file-backed store rooted at dir
// on the real filesystem.
func OpenFile(dir string) (*FileStore, error) { return OpenFileFS(dir, OSFS()) }

// OpenFileFS opens a store over an explicit FS (tests and harnesses).
// The opening scan indexes readable records, deletes temp files from
// interrupted Puts, and deletes corrupt or torn records — counting them in
// CorruptSkipped — so a store that crashed mid-write always opens clean.
func OpenFileFS(dir string, fsys FS) (*FileStore, error) {
	s := &FileStore{dir: dir, fs: hooked{fsys},
		names: make(map[string]string), degraded: make(map[string]struct{})}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: open %s: %w", dir, err)
	}
	entries, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: scan %s: %w", dir, err)
	}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, "tmp-") {
			s.fs.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		path := filepath.Join(dir, name)
		rec, err := s.fs.ReadFile(path)
		if err != nil {
			s.corrupt++
			s.fs.Remove(path)
			continue
		}
		e, err := Decode(rec)
		if err != nil || fileName(e.Key) != name {
			s.corrupt++
			s.fs.Remove(path)
			continue
		}
		s.names[e.Key] = name
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// CorruptSkipped implements CorruptCounter.
func (s *FileStore) CorruptSkipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

func fileName(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x%s", h.Sum64(), fileExt)
}

// Put implements Store: temp file in the same directory, write, fsync,
// close, atomic rename, best-effort directory fsync.
//
// Write-path failures (ENOSPC, a failed write or fsync, a failed rename)
// degrade durability for the key rather than cascading: the failing Put
// returns an error wrapping ErrDurabilityLost (and the underlying cause),
// the event is logged once, and every later Put for the same key returns
// ErrDurabilityLost immediately without touching the disk. The caller's
// in-memory checkpoint path keeps working; Delete clears the degraded
// mark along with the key, so the store converges back to healthy as
// in-flight requests finish.
func (s *FileStore) Put(e *Entry) error {
	if e.Key == "" {
		return fmt.Errorf("ckptstore: empty key")
	}
	s.mu.Lock()
	closed := s.closed
	_, degraded := s.degraded[e.Key]
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("ckptstore: store closed")
	}
	if degraded {
		return ErrDurabilityLost
	}
	rec := Encode(e)
	tmp, err := s.fs.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return s.degrade(e.Key, "create", err)
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		return s.degrade(e.Key, "write", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return s.degrade(e.Key, "fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return s.degrade(e.Key, "close", err)
	}
	name := fileName(e.Key)
	if err := s.fs.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return s.degrade(e.Key, "rename", err)
	}
	// Persist the rename itself; rename atomicity holds regardless, so a
	// failure here only risks losing the newest commit, not corruption.
	if d, err := s.fs.OpenDir(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.mu.Lock()
	s.names[e.Key] = name
	s.mu.Unlock()
	return nil
}

// degrade marks a key durability-lost after a write-path failure and
// builds the Put error reporting both the condition and its cause.
func (s *FileStore) degrade(key, op string, cause error) error {
	s.mu.Lock()
	s.degraded[key] = struct{}{}
	n := len(s.degraded)
	s.mu.Unlock()
	if s.Logf != nil {
		s.Logf("ckptstore: %s failed for %q, durable commits disabled for the key (%d degraded): %v",
			op, key, n, cause)
	}
	return fmt.Errorf("%w: %s %q: %w", ErrDurabilityLost, op, key, cause)
}

// DegradedKeys reports how many keys currently have durable commits
// disabled; /healthz lists the checkpoint store as a degraded subsystem
// while this is nonzero.
func (s *FileStore) DegradedKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.degraded)
}

// DurabilityDegraded implements the engine's degraded-subsystem probe.
func (s *FileStore) DurabilityDegraded() bool { return s.DegradedKeys() > 0 }

// Get implements Store. A record that fails decode or whose embedded key
// does not match (hash collision, hand-planted file) counts as corrupt,
// is deleted, and surfaces ErrCorrupt.
func (s *FileStore) Get(key string) (*Entry, error) {
	s.mu.Lock()
	name, ok := s.names[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	path := filepath.Join(s.dir, name)
	rec, err := s.fs.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.forget(key, false)
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return nil, fmt.Errorf("ckptstore: get %q: %w", key, err)
	}
	e, err := Decode(rec)
	if err != nil || e.Key != key {
		s.forget(key, true)
		s.fs.Remove(path)
		if err == nil {
			err = fmt.Errorf("%w: record holds key %q", ErrCorrupt, e.Key)
		}
		return nil, err
	}
	return e, nil
}

func (s *FileStore) forget(key string, corrupt bool) {
	s.mu.Lock()
	delete(s.names, key)
	if corrupt {
		s.corrupt++
	}
	s.mu.Unlock()
}

// Delete implements Store. Deleting a key also clears its
// durability-degraded mark: the next request reusing the key starts with
// a clean slate.
func (s *FileStore) Delete(key string) error {
	s.mu.Lock()
	name, ok := s.names[key]
	delete(s.names, key)
	delete(s.degraded, key)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("ckptstore: delete %q: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (s *FileStore) Keys() ([]string, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.names))
	for k := range s.names {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}
