package ckptstore

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"

	"dswp/internal/failpoint"
	"dswp/internal/interp"
	rt "dswp/internal/runtime"
)

// fsEntry builds a small but real entry for fault tests.
func fsEntry(t *testing.T, key string) *Entry {
	t.Helper()
	base := interp.NewMemory(64)
	mem := interp.NewMemory(64)
	mem.Store(3, 42)
	mem.Store(17, -7)
	cp := rt.Checkpoint{Iter: 9, Regs: []int64{0, 5}, Mem: mem}
	e, err := NewEntry(key, []byte(`{"workload":"x"}`), cp, base)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func openTestStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// countFiles counts directory entries with the given prefix or suffix.
func countFiles(t *testing.T, dir, prefix, suffix string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		name := de.Name()
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		if suffix != "" && !strings.HasSuffix(name, suffix) {
			continue
		}
		n++
	}
	return n
}

func TestFileStoreENOSPCDegradesKey(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	var logged int
	s.Logf = func(string, ...any) { logged++ }

	if err := failpoint.Enable("ckptstore/file/write", "error(ENOSPC):once"); err != nil {
		t.Fatal(err)
	}
	err := s.Put(fsEntry(t, "wl.r000001"))
	if !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("ENOSPC put: got %v, want ErrDurabilityLost", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("put error should carry the errno: %v", err)
	}
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("put error should be traceable to the injection: %v", err)
	}
	if logged != 1 {
		t.Fatalf("degrade logged %d times, want 1", logged)
	}
	if !s.DurabilityDegraded() || s.DegradedKeys() != 1 {
		t.Fatalf("store not marked degraded (keys=%d)", s.DegradedKeys())
	}

	// Later commits for the same key are refused without touching the
	// disk: the one-shot has burned, so any further trigger would mean
	// another IO attempt.
	before := failpoint.Triggers()["ckptstore/file/write"]
	for i := 0; i < 3; i++ {
		if err := s.Put(fsEntry(t, "wl.r000001")); !errors.Is(err, ErrDurabilityLost) {
			t.Fatalf("degraded put %d: got %v", i, err)
		}
	}
	if after := failpoint.Triggers()["ckptstore/file/write"]; after != before {
		t.Fatalf("degraded key still hit the write path (%d -> %d)", before, after)
	}
	if logged != 1 {
		t.Fatalf("degraded puts re-logged (%d lines)", logged)
	}

	// Other keys are unaffected.
	if err := s.Put(fsEntry(t, "wl.r000002")); err != nil {
		t.Fatalf("healthy key: %v", err)
	}
	if _, err := s.Get("wl.r000002"); err != nil {
		t.Fatalf("healthy key get: %v", err)
	}

	// Deleting the degraded key clears the mark — the store heals as
	// requests finish.
	if err := s.Delete("wl.r000001"); err != nil {
		t.Fatal(err)
	}
	if s.DurabilityDegraded() {
		t.Fatal("degraded mark survived Delete")
	}
	if err := s.Put(fsEntry(t, "wl.r000001")); err != nil {
		t.Fatalf("key should be writable again after Delete: %v", err)
	}
}

func TestFileStoreFsyncFailureDegrades(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := failpoint.Enable("ckptstore/file/sync", "error(EIO):once"); err != nil {
		t.Fatal(err)
	}
	err := s.Put(fsEntry(t, "k"))
	if !errors.Is(err, ErrDurabilityLost) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("fsync failure: got %v", err)
	}
	// The failed Put must not leave artifacts: no record, no temp file.
	if n := countFiles(t, s.Dir(), "", fileExt); n != 0 {
		t.Fatalf("%d record files after failed put", n)
	}
	if n := countFiles(t, s.Dir(), "tmp-", ""); n != 0 {
		t.Fatalf("%d temp files after failed put", n)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after failed put: %v", err)
	}
}

func TestFileStoreShortWrite(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := failpoint.Enable("ckptstore/file/short-write", "error(ENOSPC):once"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fsEntry(t, "k")); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("short write: got %v", err)
	}
	// The half-written temp file is cleaned up by the deferred remove;
	// reopening the directory must find a clean store either way.
	s2, err := OpenFile(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := s2.Keys()
	if len(keys) != 0 {
		t.Fatalf("short write left readable records: %v", keys)
	}
}

func TestFileStoreTornRenameCaughtByCRC(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := failpoint.Enable("ckptstore/file/torn-rename", "error(x):once"); err != nil {
		t.Fatal(err)
	}
	// The lying-disk shape: Put reports success...
	if err := s.Put(fsEntry(t, "k")); err != nil {
		t.Fatalf("torn rename must report success (that is the fault): %v", err)
	}
	if s.DurabilityDegraded() {
		t.Fatal("torn rename must not mark the key degraded — the store cannot know")
	}
	// ...but the record on disk is sheared, and the CRC catches it at
	// read time: ErrCorrupt, never a wrong checkpoint.
	if _, err := s.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn record read: got %v, want ErrCorrupt", err)
	}
	if s.CorruptSkipped() != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", s.CorruptSkipped())
	}
	// The corrupt record was GC'd on detection.
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read: got %v, want ErrNotFound", err)
	}
}

func TestFileStoreTornRenameCaughtAtOpen(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := failpoint.Enable("ckptstore/file/torn-rename", "error(x):once"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fsEntry(t, "k")); err != nil {
		t.Fatal(err)
	}
	failpoint.Reset()
	// A restart over the same directory sweeps the torn record.
	s2, err := OpenFile(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if s2.CorruptSkipped() != 1 {
		t.Fatalf("open scan skipped %d corrupt records, want 1", s2.CorruptSkipped())
	}
	keys, _ := s2.Keys()
	if len(keys) != 0 {
		t.Fatalf("torn record survived the open scan: %v", keys)
	}
}

func TestFileStoreCreateAndRenameFailures(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := failpoint.Enable("ckptstore/file/create", "error(ENOSPC):once"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fsEntry(t, "a")); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("create failure: %v", err)
	}
	if err := failpoint.Enable("ckptstore/file/rename", "error(EIO):once"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fsEntry(t, "b")); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("rename failure: %v", err)
	}
	if n := countFiles(t, s.Dir(), "tmp-", ""); n != 0 {
		t.Fatalf("%d temp files left by failed rename", n)
	}
	if s.DegradedKeys() != 2 {
		t.Fatalf("degraded keys = %d, want 2", s.DegradedKeys())
	}
}

func TestFileStoreReadFaultIsNotCorruption(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s := openTestStore(t)
	if err := s.Put(fsEntry(t, "k")); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("ckptstore/file/read", "error(EIO):once"); err != nil {
		t.Fatal(err)
	}
	// A transient read error is surfaced as-is — not ErrCorrupt, not
	// ErrNotFound — and the record survives for the retry.
	if _, err := s.Get("k"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read fault: %v", err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("record should have survived the transient read fault: %v", err)
	}
}

// TestFileStoreFaultSoak drives a seeded mixture of every fs fault class
// through many Put/Get/Delete cycles and asserts the store's contract
// after each operation: reads return a valid entry, ErrNotFound, or
// ErrCorrupt — never a wrong record — and a final fault-free reopen comes
// up clean.
func TestFileStoreFaultSoak(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []struct{ site, spec string }{
		{"ckptstore/file/write", "error(ENOSPC):prob(0.15,11)"},
		{"ckptstore/file/sync", "error(EIO):prob(0.1,12)"},
		{"ckptstore/file/short-write", "error(ENOSPC):prob(0.1,13)"},
		{"ckptstore/file/torn-rename", "error(x):prob(0.15,14)"},
		{"ckptstore/file/rename", "error(EIO):prob(0.1,15)"},
		{"ckptstore/file/read", "error(EIO):prob(0.1,16)"},
	} {
		if err := failpoint.Enable(arm.site, arm.spec); err != nil {
			t.Fatal(err)
		}
	}
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		key := keys[i%len(keys)]
		switch i % 3 {
		case 0:
			err := s.Put(fsEntry(t, key))
			if err != nil && !errors.Is(err, ErrDurabilityLost) {
				t.Fatalf("op %d: put %q: unclassified error %v", i, key, err)
			}
		case 1:
			e, err := s.Get(key)
			switch {
			case err == nil:
				if e.Key != key {
					t.Fatalf("op %d: get %q returned record for %q", i, key, e.Key)
				}
			case errors.Is(err, ErrNotFound), errors.Is(err, ErrCorrupt),
				errors.Is(err, failpoint.ErrInjected):
			default:
				t.Fatalf("op %d: get %q: unclassified error %v", i, key, err)
			}
		case 2:
			if err := s.Delete(key); err != nil {
				t.Fatalf("op %d: delete %q: %v", i, key, err)
			}
		}
	}
	failpoint.Reset()
	for _, key := range keys {
		s.Delete(key)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ks, _ := s2.Keys(); len(ks) != 0 {
		t.Fatalf("fault-free reopen found leftovers: %v", ks)
	}
	if n := countFiles(t, dir, "tmp-", ""); n != 0 {
		t.Fatalf("%d temp files survived the soak", n)
	}
}
