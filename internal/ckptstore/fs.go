package ckptstore

import (
	"os"

	"dswp/internal/failpoint"
)

// FS abstracts every filesystem operation FileStore performs, so the
// whole durable path can be exercised under injected faults without a
// hostile filesystem. Production uses OSFS; FileStore always wraps the
// FS it is given with the failpoint hooks below, so arming a
// `ckptstore/file/*` site perturbs a real store with no plumbing — and
// with all sites disarmed the hooks cost one atomic load per IO call,
// noise next to the syscall they precede.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Remove(path string) error
	Rename(oldpath, newpath string) error
	Truncate(path string, size int64) error
	// CreateTemp creates a unique temp file in dir (os.CreateTemp
	// pattern semantics).
	CreateTemp(dir, pattern string) (File, error)
	// OpenDir opens a directory for fsync.
	OpenDir(dir string) (File, error)
}

// File is the open-file surface FileStore needs.
type File interface {
	Name() string
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS returns the real-filesystem implementation.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) Remove(path string) error                    { return os.Remove(path) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(path string, size int64) error      { return os.Truncate(path, size) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenDir(dir string) (File, error) {
	f, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// The FileStore IO failpoint sites. Error-action policies surface as the
// operation's error (arm with error(ENOSPC) to simulate a full disk at
// exactly the syscall that would report it); the two structured sites
// below inject failure *shapes* rather than plain errors:
//
//   - ckptstore/file/short-write: the write persists only the first half
//     of the buffer and reports the armed error — the partial-write case
//     POSIX allows and code routinely mishandles;
//   - ckptstore/file/torn-rename: the rename RETURNS SUCCESS but the
//     renamed file is truncated to half its length — the lying-disk
//     crash shape where the commit was acknowledged yet the record on
//     disk is garbage. Only the CRC trailer stands between this and a
//     silently wrong resume.
var (
	fpCreate = failpoint.New("ckptstore/file/create")
	fpWrite  = failpoint.New("ckptstore/file/write")
	fpShort  = failpoint.New("ckptstore/file/short-write")
	fpSync   = failpoint.New("ckptstore/file/sync")
	fpRename = failpoint.New("ckptstore/file/rename")
	fpTorn   = failpoint.New("ckptstore/file/torn-rename")
	fpRead   = failpoint.New("ckptstore/file/read")
)

// hooked wraps an FS with the failpoint sites. FileStore installs it
// unconditionally over whatever FS it is handed.
type hooked struct{ fs FS }

func (h hooked) MkdirAll(dir string, perm os.FileMode) error { return h.fs.MkdirAll(dir, perm) }
func (h hooked) ReadDir(dir string) ([]os.DirEntry, error)   { return h.fs.ReadDir(dir) }
func (h hooked) Remove(path string) error                    { return h.fs.Remove(path) }
func (h hooked) Truncate(path string, size int64) error      { return h.fs.Truncate(path, size) }
func (h hooked) OpenDir(dir string) (File, error)            { return h.fs.OpenDir(dir) }

func (h hooked) ReadFile(path string) ([]byte, error) {
	if err := fpRead.Fail(); err != nil {
		return nil, err
	}
	return h.fs.ReadFile(path)
}

func (h hooked) Rename(oldpath, newpath string) error {
	if err := fpRename.Fail(); err != nil {
		return err
	}
	if terr := fpTorn.Fail(); terr != nil {
		// Torn rename: complete the rename, then shear the destination.
		// The caller sees success; only a read-time CRC check can tell.
		if err := h.fs.Rename(oldpath, newpath); err != nil {
			return err
		}
		if fi, err := os.Stat(newpath); err == nil {
			_ = h.fs.Truncate(newpath, fi.Size()/2)
		}
		return nil
	}
	return h.fs.Rename(oldpath, newpath)
}

func (h hooked) CreateTemp(dir, pattern string) (File, error) {
	if err := fpCreate.Fail(); err != nil {
		return nil, err
	}
	f, err := h.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return hookedFile{f}, nil
}

type hookedFile struct{ File }

func (f hookedFile) Write(p []byte) (int, error) {
	if err := fpWrite.Fail(); err != nil {
		return 0, err
	}
	if serr := fpShort.Fail(); serr != nil {
		n, werr := f.File.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, serr
	}
	return f.File.Write(p)
}

func (f hookedFile) Sync() error {
	if err := fpSync.Fail(); err != nil {
		return err
	}
	return f.File.Sync()
}
