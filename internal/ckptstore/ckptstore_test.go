package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dswp/internal/interp"
	rt "dswp/internal/runtime"
)

// testCheckpoint builds a base image of n words plus a checkpoint that
// diverges from it at a handful of addresses.
func testCheckpoint(n int64) (*interp.Memory, rt.Checkpoint) {
	base := interp.NewMemory(n)
	for a := int64(0); a < n; a++ {
		base.Set(a, a*3-7)
	}
	mem := base.Clone()
	mem.Set(0, -1)
	mem.Set(n/2, 1<<40)
	mem.Set(n-1, 42)
	return base, rt.Checkpoint{Iter: 96, Mem: mem, Regs: []int64{-5, 0, 1 << 50, 7}}
}

func mustEntry(t *testing.T, key string, meta []byte, cp rt.Checkpoint, base *interp.Memory) *Entry {
	t.Helper()
	e, err := NewEntry(key, meta, cp, base)
	if err != nil {
		t.Fatalf("NewEntry: %v", err)
	}
	return e
}

func checkRoundTrip(t *testing.T, e *Entry, base *interp.Memory, want rt.Checkpoint) {
	t.Helper()
	got, err := e.Checkpoint(base)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got.Iter != want.Iter {
		t.Errorf("iter = %d, want %d", got.Iter, want.Iter)
	}
	if len(got.Regs) != len(want.Regs) {
		t.Fatalf("regs = %v, want %v", got.Regs, want.Regs)
	}
	for i := range want.Regs {
		if got.Regs[i] != want.Regs[i] {
			t.Errorf("reg %d = %d, want %d", i, got.Regs[i], want.Regs[i])
		}
	}
	if d := got.Mem.Diff(want.Mem); d != -1 {
		t.Errorf("memory differs at word %d", d)
	}
}

func TestEntryDeltaRoundTrip(t *testing.T) {
	base, cp := testCheckpoint(256)
	e := mustEntry(t, "wl.r1", []byte(`{"workload":"x"}`), cp, base)
	if len(e.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3 (got %v)", len(e.Deltas), e.Deltas)
	}
	checkRoundTrip(t, e, base, cp)
	// The reconstruction must not alias the base image.
	got, _ := e.Checkpoint(base)
	got.Mem.Set(5, 999)
	if base.Get(5) == 999 {
		t.Error("reconstructed memory aliases the base image")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	base, cp := testCheckpoint(64)
	e := mustEntry(t, "181.mcf.r42", []byte("meta-blob"), cp, base)
	d, err := Decode(Encode(e))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Key != e.Key || string(d.Meta) != string(e.Meta) || d.Iter != e.Iter || d.BaseLen != e.BaseLen {
		t.Errorf("header fields differ: %+v vs %+v", d, e)
	}
	checkRoundTrip(t, d, base, cp)
}

func TestEncodeDecodeEmptyFields(t *testing.T) {
	base := interp.NewMemory(8)
	cp := rt.Checkpoint{Iter: 0, Mem: base.Clone(), Regs: nil}
	e := mustEntry(t, "k", nil, cp, base)
	d, err := Decode(Encode(e))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(d.Deltas) != 0 || len(d.Regs) != 0 || len(d.Meta) != 0 {
		t.Errorf("expected empty fields, got %+v", d)
	}
}

func TestNewEntrySizeMismatch(t *testing.T) {
	base, cp := testCheckpoint(64)
	if _, err := NewEntry("k", nil, cp, interp.NewMemory(32)); err == nil {
		t.Error("NewEntry accepted mismatched base size")
	}
	if _, err := NewEntry("k", nil, rt.Checkpoint{}, base); err == nil {
		t.Error("NewEntry accepted nil checkpoint memory")
	}
}

func TestCheckpointBaseMismatch(t *testing.T) {
	base, cp := testCheckpoint(64)
	e := mustEntry(t, "k", nil, cp, base)
	if _, err := e.Checkpoint(interp.NewMemory(16)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong-size base: err = %v, want ErrCorrupt", err)
	}
	if _, err := e.Checkpoint(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil base: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeCorruption flips or truncates every byte position and asserts
// Decode never panics and never silently accepts a damaged record.
func TestDecodeCorruption(t *testing.T) {
	base, cp := testCheckpoint(64)
	rec := Encode(mustEntry(t, "corrupt-me", []byte("m"), cp, base))

	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x41
		if _, err := Decode(bad); err == nil {
			// A flip in both the body and CRC matching by chance is
			// astronomically unlikely; any success here is a bug.
			t.Errorf("Decode accepted record with byte %d flipped", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	for n := 0; n < len(rec); n++ {
		if _, err := Decode(rec[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), rec...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Error("Decode accepted record with trailing byte")
	}
}

// TestDecodeHostileCounts crafts records whose CRC is valid but whose
// length fields are absurd, so allocation guards (not the CRC) must catch
// them.
func TestDecodeHostileCounts(t *testing.T) {
	// Raw record: magic + a keyLen claiming ~2^34 bytes, with a valid CRC
	// so only the framing guard can reject it.
	body := append([]byte{}, magic[:]...)
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := Decode(withCRC(body)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge keyLen: err = %v, want ErrCorrupt", err)
	}
	// Valid empty key/meta, then a register count larger than the record.
	body = append([]byte{}, magic[:]...)
	body = append(body, 0, 0, 0, 0) // keyLen, metaLen, iter, baseLen
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := Decode(withCRC(body)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge nregs: err = %v, want ErrCorrupt", err)
	}
}

// withCRC appends the CRC trailer Encode would, making hand-built hostile
// bodies pass the checksum gate.
func withCRC(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	return append(append([]byte(nil), body...), crc[:]...)
}

func TestMemStoreBasics(t *testing.T) {
	base, cp := testCheckpoint(64)
	s := NewMem()
	defer s.Close()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	e := mustEntry(t, "a", []byte("m"), cp, base)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	checkRoundTrip(t, got, base, cp)

	s.Put(mustEntry(t, "b", nil, cp, base))
	keys, _ := s.Keys()
	if fmt.Sprint(keys) != "[a b]" {
		t.Errorf("Keys = %v, want [a b]", keys)
	}
	s.Corrupt("a")
	if _, err := s.Get("a"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get(corrupted) = %v, want ErrCorrupt", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(deleted) = %v, want ErrNotFound", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Errorf("Delete(absent) = %v, want nil", err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	base, cp := testCheckpoint(128)
	key := "list-traversal|t=4.r7"
	if err := s.Put(mustEntry(t, key, []byte("req-json"), cp, base)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	checkRoundTrip(t, got, base, cp)

	// Overwrite under the same key: latest wins, still one file.
	cp2 := cp
	cp2.Iter = 200
	if err := s.Put(mustEntry(t, key, nil, cp2, base)); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, err = s.Get(key)
	if err != nil {
		t.Fatalf("Get after overwrite: %v", err)
	}
	if got.Iter != 200 {
		t.Errorf("iter after overwrite = %d, want 200", got.Iter)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Errorf("dir holds %d files, want 1", len(files))
	}
	s.Close()

	// Reopen: the record survives and re-indexes.
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	keys, _ := s2.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("keys after reopen = %v, want [%s]", keys, key)
	}
	if s2.CorruptSkipped() != 0 {
		t.Errorf("CorruptSkipped = %d, want 0", s2.CorruptSkipped())
	}
}

func TestFileStoreCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFile(dir)
	base, cp := testCheckpoint(64)
	s.Put(mustEntry(t, "good", nil, cp, base))
	s.Close()

	// Simulate crash artifacts: a leftover temp file, a torn record, and
	// a garbage file with the right extension.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := Encode(mustEntry(t, "torn", nil, cp, base))
	if err := os.WriteFile(filepath.Join(dir, fileName("torn")), rec[:len(rec)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.ckpt"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen over crash artifacts: %v", err)
	}
	keys, _ := s2.Keys()
	if len(keys) != 1 || keys[0] != "good" {
		t.Errorf("keys = %v, want [good]", keys)
	}
	if s2.CorruptSkipped() != 2 {
		t.Errorf("CorruptSkipped = %d, want 2 (torn + garbage)", s2.CorruptSkipped())
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if strings.HasPrefix(f.Name(), "tmp-") || f.Name() == "garbage.ckpt" {
			t.Errorf("crash artifact %s not garbage-collected", f.Name())
		}
	}
	if len(files) != 1 {
		t.Errorf("dir holds %d files after GC, want 1", len(files))
	}
}

func TestFileStoreCorruptAfterIndex(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFile(dir)
	base, cp := testCheckpoint(64)
	s.Put(mustEntry(t, "k", nil, cp, base))
	// Corrupt the file behind the store's back, after indexing.
	path := filepath.Join(dir, fileName("k"))
	rec, _ := os.ReadFile(path)
	rec[len(rec)-1] ^= 0xFF
	os.WriteFile(path, rec, 0o644)
	if _, err := s.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(corrupt) = %v, want ErrCorrupt", err)
	}
	if s.CorruptSkipped() != 1 {
		t.Errorf("CorruptSkipped = %d, want 1", s.CorruptSkipped())
	}
	// The corrupt record is gone; a second Get is a clean miss.
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after GC = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file not removed")
	}
}

func TestStoresConcurrent(t *testing.T) {
	base, cp := testCheckpoint(64)
	for _, tc := range []struct {
		name string
		s    Store
	}{
		{"mem", NewMem()},
		{"file", mustOpen(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					key := fmt.Sprintf("k%d", g)
					for i := 0; i < 25; i++ {
						c := cp
						c.Iter = int64(i)
						e, err := NewEntry(key, nil, c, base)
						if err != nil {
							t.Errorf("NewEntry: %v", err)
							return
						}
						if err := tc.s.Put(e); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						got, err := tc.s.Get(key)
						if err != nil {
							t.Errorf("Get: %v", err)
							return
						}
						if got.Iter != int64(i) {
							t.Errorf("iter = %d, want %d", got.Iter, i)
							return
						}
						if _, err := tc.s.Keys(); err != nil {
							t.Errorf("Keys: %v", err)
							return
						}
					}
					tc.s.Delete(key)
				}(g)
			}
			wg.Wait()
			keys, _ := tc.s.Keys()
			if len(keys) != 0 {
				t.Errorf("keys after deletes = %v, want none", keys)
			}
			tc.s.Close()
		})
	}
}

func mustOpen(t *testing.T) *FileStore {
	t.Helper()
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}
