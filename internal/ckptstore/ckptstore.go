// Package ckptstore is the durable half of the fault-tolerance story: a
// pluggable store for runtime.Checkpoint commits, so recovery survives not
// just a failed pipeline attempt (the supervisor's in-memory latch) but the
// loss of the attempt's whole process — an engine retry after a poisoned
// run, or a dswpd restart after SIGKILL.
//
// Entries use a compact binary encoding built for the crash case:
//
//   - memory is stored as deltas against the workload's initial image
//     rather than a full clone — DSWP checkpoints are taken mid-loop, so
//     most of the (synthetic-input) image is untouched and the delta list
//     stays small even for multi-thousand-word workloads;
//   - the register file and iteration epoch are varint-packed;
//   - a trailing CRC32 (IEEE) guards the whole record, so torn or
//     bit-rotted entries are detected and skipped, never resumed from;
//   - each entry carries its key and an opaque caller metadata blob (the
//     serving engine stores the request JSON there), which is what makes
//     post-crash recovery self-describing: scanning the store is enough to
//     know what work was in flight and how to rebuild its initial state.
//
// Two implementations share the codec: MemStore (a mutex-guarded map of
// encoded records — the default for in-process engines, and it keeps the
// codec honest on every commit) and FileStore (one file per key, written
// via temp file + fsync + atomic rename, corrupt files skipped and
// garbage-collected on open).
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dswp/internal/interp"
	rt "dswp/internal/runtime"
)

// Typed store errors. FileStore and MemStore wrap these so callers can
// errors.Is without caring which implementation they hold.
var (
	// ErrNotFound reports that no entry exists under the requested key.
	ErrNotFound = errors.New("ckptstore: entry not found")
	// ErrCorrupt reports that an entry exists but failed validation
	// (bad magic, truncation, CRC mismatch, or impossible geometry) —
	// the caller must treat it as absent and garbage-collect it rather
	// than resume from it.
	ErrCorrupt = errors.New("ckptstore: entry corrupt")
)

// Store is the durable checkpoint interface the supervisor commits through
// and the engine recovers from. Implementations must be safe for
// concurrent use; Put must be atomic with respect to crashes (a reader
// after a mid-Put crash sees either the previous entry or a detectably
// corrupt one, never a silent hybrid).
type Store interface {
	// Put durably commits e under e.Key, replacing any previous entry.
	Put(e *Entry) error
	// Get returns the entry under key. Errors: ErrNotFound when absent,
	// ErrCorrupt when present but unusable.
	Get(key string) (*Entry, error)
	// Delete removes the entry under key (no error when absent).
	Delete(key string) error
	// Keys lists every readable entry's key.
	Keys() ([]string, error)
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// CorruptCounter is implemented by stores that can report how many
// corrupt or torn entries they detected and skipped (FileStore counts
// them during its open scan and on Get); recovery surfaces the count.
type CorruptCounter interface {
	CorruptSkipped() int
}

// Delta is one word the checkpoint changed relative to the initial image.
type Delta struct {
	Addr int64
	Val  int64
}

// Entry is one durable checkpoint: the architectural cut a
// runtime.Checkpoint captures, delta-encoded against the workload's
// initial memory image, plus the identity and metadata recovery needs.
type Entry struct {
	// Key is the store key the entry lives under.
	Key string
	// Meta is an opaque caller blob carried with the entry — the serving
	// engine stores the originating request's JSON so a post-crash scan
	// can rebuild the workload without any out-of-band state.
	Meta []byte
	// Iter is the checkpoint's completed outer-loop iteration count.
	Iter int64
	// Regs is the merged architectural register file.
	Regs []int64
	// BaseLen is the word count of the initial memory image the deltas
	// were computed against; reconstruction validates it.
	BaseLen int64
	// Deltas are the words that differ from the initial image.
	Deltas []Delta
}

// NewEntry delta-encodes checkpoint cp against the initial image base.
// base must be the same image the run started from (sizes must match);
// meta travels with the entry verbatim.
func NewEntry(key string, meta []byte, cp rt.Checkpoint, base *interp.Memory) (*Entry, error) {
	if cp.Mem == nil {
		return nil, fmt.Errorf("ckptstore: checkpoint has no memory image")
	}
	var baseLen int64
	if base != nil {
		baseLen = base.Size()
	}
	if baseLen != cp.Mem.Size() {
		return nil, fmt.Errorf("ckptstore: base image %d words, checkpoint %d",
			baseLen, cp.Mem.Size())
	}
	e := &Entry{Key: key, Meta: meta, Iter: cp.Iter,
		Regs: append([]int64(nil), cp.Regs...), BaseLen: baseLen}
	for a := int64(0); a < baseLen; a++ {
		if v := cp.Mem.Get(a); v != base.Get(a) {
			e.Deltas = append(e.Deltas, Delta{Addr: a, Val: v})
		}
	}
	return e, nil
}

// Checkpoint reconstructs the runtime.Checkpoint against base, which must
// be the same initial image the entry was encoded against (same size; the
// caller rebuilds it deterministically from the workload named in Meta).
func (e *Entry) Checkpoint(base *interp.Memory) (rt.Checkpoint, error) {
	if base == nil || base.Size() != e.BaseLen {
		got := int64(-1)
		if base != nil {
			got = base.Size()
		}
		return rt.Checkpoint{}, fmt.Errorf("%w: base image %d words, entry encoded against %d",
			ErrCorrupt, got, e.BaseLen)
	}
	mem := base.Clone()
	for _, d := range e.Deltas {
		if d.Addr < 0 || d.Addr >= e.BaseLen {
			return rt.Checkpoint{}, fmt.Errorf("%w: delta address %d outside image of %d words",
				ErrCorrupt, d.Addr, e.BaseLen)
		}
		mem.Set(d.Addr, d.Val)
	}
	return rt.Checkpoint{Iter: e.Iter, Mem: mem,
		Regs: append([]int64(nil), e.Regs...)}, nil
}

// Binary record layout (all varints are binary.PutUvarint /
// binary.PutVarint little-endian base-128):
//
//	magic   [8]byte "DSWPCKP1"
//	keyLen  uvarint, key bytes
//	metaLen uvarint, meta bytes
//	iter    uvarint
//	baseLen uvarint
//	nregs   uvarint, regs as zigzag varints
//	ndeltas uvarint, per delta: addr-gap uvarint (delta from the previous
//	        address, so sorted sparse writes stay 1-byte), val zigzag varint
//	crc     uint32 little-endian, IEEE CRC32 over everything above
var magic = [8]byte{'D', 'S', 'W', 'P', 'C', 'K', 'P', '1'}

// Encode serializes the entry into the CRC-guarded binary record.
func Encode(e *Entry) []byte {
	var buf []byte
	buf = append(buf, magic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	u := func(v uint64) { buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	s := func(v int64) { buf = append(buf, tmp[:binary.PutVarint(tmp[:], v)]...) }
	u(uint64(len(e.Key)))
	buf = append(buf, e.Key...)
	u(uint64(len(e.Meta)))
	buf = append(buf, e.Meta...)
	u(uint64(e.Iter))
	u(uint64(e.BaseLen))
	u(uint64(len(e.Regs)))
	for _, r := range e.Regs {
		s(r)
	}
	u(uint64(len(e.Deltas)))
	prev := int64(0)
	for _, d := range e.Deltas {
		u(uint64(d.Addr - prev))
		s(d.Val)
		prev = d.Addr
	}
	sum := crc32.ChecksumIEEE(buf)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	return append(buf, crc[:]...)
}

// Decode parses a binary record, validating magic, framing, and CRC.
// Every validation failure wraps ErrCorrupt — a decode error always means
// "do not resume from this", never "retry differently".
func Decode(b []byte) (*Entry, error) {
	if len(b) < len(magic)+4 {
		return nil, fmt.Errorf("%w: record truncated to %d bytes", ErrCorrupt, len(b))
	}
	body, crc := b[:len(b)-4], b[len(b)-4:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if string(body[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	p := body[len(magic):]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		p = p[n:]
		return v, nil
	}
	s := func() (int64, error) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		p = p[n:]
		return v, nil
	}
	take := func(n uint64) ([]byte, error) {
		if n > uint64(len(p)) {
			return nil, fmt.Errorf("%w: field of %d bytes exceeds record", ErrCorrupt, n)
		}
		out := p[:n]
		p = p[n:]
		return out, nil
	}

	e := &Entry{}
	n, err := u()
	if err != nil {
		return nil, err
	}
	kb, err := take(n)
	if err != nil {
		return nil, err
	}
	e.Key = string(kb)
	if n, err = u(); err != nil {
		return nil, err
	}
	mb, err := take(n)
	if err != nil {
		return nil, err
	}
	if len(mb) > 0 {
		e.Meta = append([]byte(nil), mb...)
	}
	iter, err := u()
	if err != nil {
		return nil, err
	}
	e.Iter = int64(iter)
	bl, err := u()
	if err != nil {
		return nil, err
	}
	e.BaseLen = int64(bl)
	nregs, err := u()
	if err != nil {
		return nil, err
	}
	if nregs > uint64(len(p)) { // each reg is >= 1 byte
		return nil, fmt.Errorf("%w: %d registers exceed record", ErrCorrupt, nregs)
	}
	e.Regs = make([]int64, nregs)
	for i := range e.Regs {
		if e.Regs[i], err = s(); err != nil {
			return nil, err
		}
	}
	nd, err := u()
	if err != nil {
		return nil, err
	}
	if nd > uint64(len(p)) { // each delta is >= 2 bytes
		return nil, fmt.Errorf("%w: %d deltas exceed record", ErrCorrupt, nd)
	}
	e.Deltas = make([]Delta, nd)
	prev := int64(0)
	for i := range e.Deltas {
		gap, err := u()
		if err != nil {
			return nil, err
		}
		val, err := s()
		if err != nil {
			return nil, err
		}
		prev += int64(gap)
		e.Deltas[i] = Delta{Addr: prev, Val: val}
		if prev < 0 || prev >= e.BaseLen {
			return nil, fmt.Errorf("%w: delta address %d outside image of %d words",
				ErrCorrupt, prev, e.BaseLen)
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return e, nil
}
