// Partition-explorer reproduces the paper's Figure 7 exploration on
// 181.mcf interactively: it walks every left-to-right cut of the DAG_SCC,
// measures each pipeline, and shows how balance governs speedup and
// synchronization-array occupancy.
package main

import (
	"fmt"
	"log"
	"strings"

	"dswp/internal/exp"
	"dswp/internal/sim"
)

func main() {
	cuts, autoP1, err := exp.Fig7(sim.FullWidth())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("181.mcf: every topological-prefix cut of the DAG_SCC")
	fmt.Println()
	fmt.Printf("%8s %10s %9s   %-30s\n", "P1 SCCs", "P1 instrs", "speedup", "occupancy (P=producer-stall, .=active, C=consumer-stall)")
	for _, c := range cuts {
		bar := occupancyBar(c)
		mark := ""
		if c.P1SCCs == autoP1 {
			mark = "  <- heuristic's choice"
		}
		fmt.Printf("%8d %10d %8.3fx   %-30s%s\n", c.P1SCCs, c.P1Instrs, c.Speedup, bar, mark)
	}
	fmt.Println()
	fmt.Println("Reading the shape (paper §4.2): light first stages leave the queues")
	fmt.Println("full (producer stalls); heavy first stages starve the consumer (queues")
	fmt.Println("empty); the balanced middle keeps both cores active and wins.")
}

// occupancyBar renders the cycle distribution as a 30-char strip.
func occupancyBar(c exp.Fig7Cut) string {
	const width = 30
	p := int(c.OccFull / 100 * width)
	e := int(c.OccEmpty / 100 * width)
	a := width - p - e
	if a < 0 {
		a = 0
	}
	return strings.Repeat("P", p) + strings.Repeat(".", a) + strings.Repeat("C", e)
}
