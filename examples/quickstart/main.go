// Quickstart: build a custom pointer-chasing loop with the IR builder,
// apply automatic DSWP, check equivalence, and measure the pipeline on the
// dual-core machine model — the library's end-to-end happy path.
package main

import (
	"fmt"
	"log"

	"dswp"
)

func main() {
	// A workload straight from the library first.
	p := dswp.ListTraversal(3000)
	tr, err := dswp.Pipeline(p, dswp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined %q into %d threads, %d queues\n",
		p.Name, len(tr.Threads), tr.NumQueues)

	machine := dswp.FullWidth()
	base, err := dswp.RunBaseline(p, machine)
	if err != nil {
		log.Fatal(err)
	}
	piped, err := dswp.RunThreads(tr, p, machine) // validates equivalence too
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-threaded: %8d cycles (IPC %.2f)\n", base.Cycles, base.IPC())
	fmt.Printf("DSWP pipeline:   %8d cycles (producer IPC %.2f, consumer IPC %.2f)\n",
		piped.Cycles, piped.Cores[0].IPC(), piped.Cores[1].IPC())
	fmt.Printf("loop speedup:    %.2fx\n\n", float64(base.Cycles)/float64(piped.Cycles))

	// Now a hand-built loop: sum = sum + arr[i]*arr[i] over an array.
	custom := buildSquareSum(4096)
	tr2, err := dswp.Pipeline(custom, dswp.Config{SkipProfitability: true})
	if err != nil {
		log.Fatal(err)
	}
	b2, err := dswp.RunBaseline(custom, machine)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := dswp.RunThreads(tr2, custom, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom square-sum loop: %d -> %d cycles (%.2fx)\n",
		b2.Cycles, p2.Cycles, float64(b2.Cycles)/float64(p2.Cycles))
}

// buildSquareSum constructs a simple reduction loop with the public
// builder API.
func buildSquareSum(n int64) *dswp.Program {
	b := dswp.NewBuilder("square_sum")
	arr := b.F.AddObject("arr", n)

	pre := b.Block("pre")
	header := b.F.NewBlock("header")
	body := b.F.NewBlock("body")
	exit := b.F.NewBlock("exit")

	base := dswp.Layout(b.F)[0]
	i, sum := b.F.NewReg(), b.F.NewReg()

	b.SetBlock(pre)
	b.ConstTo(i, base)
	b.ConstTo(sum, 0)
	end := b.Const(base + n)
	one := b.Const(1)
	b.Jump(header)

	b.SetBlock(header)
	p := b.CmpLT(i, end)
	b.Br(p, body, exit)

	b.SetBlock(body)
	v := b.Load(i, 0, arr)
	sq := b.Mul(v, v)
	b.AddTo(sum, sum, sq)
	b.AddTo(i, i, one)
	b.Jump(header)

	b.SetBlock(exit)
	b.Ret()
	b.F.LiveOuts = []dswp.Reg{sum}
	b.F.MustVerify()

	mem := dswp.NewMemory(b.F)
	for k := int64(0); k < n; k++ {
		mem.Set(base+k, (k*7)%100)
	}
	return &dswp.Program{
		Name: "square-sum", F: b.F, LoopHeader: "header",
		Mem: mem, Coverage: 1,
	}
}
