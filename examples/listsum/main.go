// Listsum walks through the paper's Figure 2 running example: sum over a
// list of lists. It prints the dependence structure (the five SCCs), the
// chosen partitioning, the inserted flows, and the two thread functions —
// the same artifacts Figure 2(b)-(e) shows.
package main

import (
	"fmt"
	"log"

	"dswp"
	"dswp/internal/core"
	"dswp/internal/profile"
)

func main() {
	p := dswp.ListOfLists(60, 5)
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.Analyze(p.F, p.LoopHeader, prof, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 2 example: %d loop instructions, %d SCCs\n\n", len(a.G.Instrs), a.NumSCCs())
	fmt.Println("DAG_SCC (compare Figure 2(c)):")
	for i, comp := range a.Cond.Comps {
		fmt.Printf("  SCC %d (weight %d):\n", i, a.Weights[i])
		for _, v := range comp {
			fmt.Printf("      %s\n", a.G.Instrs[v])
		}
	}

	part := a.Heuristic()
	fmt.Printf("\npartitioning: %v (stage weights %v)\n", part.Assign, part.StageWeights())

	tr, err := a.Transform(part)
	if err != nil {
		log.Fatal(err)
	}
	initF, loopF, finF := tr.FlowCounts()
	fmt.Printf("flows: %d initial, %d loop, %d final\n", initF, loopF, finF)
	for _, fl := range tr.Flows {
		desc := fmt.Sprintf("reg %s", fl.Reg)
		if fl.Source != nil {
			desc = fl.Source.String()
		}
		fmt.Printf("  [%d] %-7s %-7s %d->%d  %s\n", fl.Queue, fl.Kind, fl.Pos, fl.From, fl.To, desc)
	}

	fmt.Printf("\n--- producer thread (compare Figure 2(d)) ---\n%s", tr.Threads[0])
	fmt.Printf("\n--- consumer thread (compare Figure 2(e)) ---\n%s", tr.Threads[1])

	// Validate and time it.
	m := dswp.FullWidth()
	base, err := dswp.RunBaseline(p, m)
	if err != nil {
		log.Fatal(err)
	}
	piped, err := dswp.RunThreads(tr, p, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidated: identical results; %d -> %d cycles (%.2fx)\n",
		base.Cycles, piped.Cycles, float64(base.Cycles)/float64(piped.Cycles))
}
