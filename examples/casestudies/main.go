// Casestudies runs the paper's §5 analyses end-to-end: memory-analysis
// precision on epicdec, spurious dependences on adpcmdec, accumulator
// expansion on 179.art, and the single-SCC bail-out on 164.gzip.
package main

import (
	"fmt"
	"log"

	"dswp/internal/exp"
	"dswp/internal/sim"
)

func main() {
	m := sim.FullWidth()

	epic, err := exp.CaseEpic(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderCaseEpic(epic))

	adpcm, err := exp.CaseAdpcm(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderCaseAdpcm(adpcm))

	art, err := exp.CaseArt(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderCaseArt(art))

	gzip, err := exp.CaseGzip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderCaseGzip(gzip))

	fmt.Println("Takeaway: DSWP's applicability tracks the precision of the")
	fmt.Println("dependence analysis and the shape of the loop's recurrences —")
	fmt.Println("better analysis or light restructuring turns losses into wins.")
}
