// Command dswpchaos runs the service-level chaos harness from the shell:
// seeded fault schedules against a live in-process engine, checking the
// serving contract (correct result or typed error, empty store after
// drain, no leaked goroutines, live-but-degraded health). Exit status 1
// means a contract violation; the seed in the output replays it.
//
//	dswpchaos -seed 20260808 -scenarios 8 -requests 32
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dswp/internal/svcchaos"
)

func main() {
	var (
		seed      = flag.Int64("seed", 0, "master seed (0 = derive from clock, printed for replay)")
		scenarios = flag.Int("scenarios", 8, "engine lifetimes to run")
		requests  = flag.Int("requests", 32, "requests per scenario")
		clients   = flag.Int("clients", 4, "concurrent clients per scenario")
		verbose   = flag.Bool("v", false, "per-scenario progress on stderr")
	)
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	cfg := svcchaos.Config{
		Seed: *seed, Scenarios: *scenarios, Requests: *requests, Clients: *clients,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dswpchaos: "+format+"\n", args...)
		}
	}
	fmt.Printf("dswpchaos: seed %d\n", *seed)
	res, err := svcchaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dswpchaos: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(res.Summary())
	if res.Failed() {
		fmt.Fprintf(os.Stderr, "dswpchaos: %d violations (replay with -seed %d)\n",
			len(res.Violations), *seed)
		os.Exit(1)
	}
}
