package main

import (
	"errors"
	"fmt"
	"testing"

	rt "dswp/internal/runtime"
	"dswp/internal/validate"
)

// TestExitCodes pins the CLI's documented exit-code contract: distinct
// codes per failure class, including errors arriving wrapped.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil-ish generic", errors.New("boom"), 1},
		{"deadlock", &rt.DeadlockError{}, 2},
		{"timeout", &rt.TimeoutError{}, 3},
		{"mismatch", &validate.MismatchError{Tag: "t", Word: 3, Detail: "d"}, 4},
		{"stage panic", &rt.StageFailure{Thread: 1, Value: "v"}, 5},
		{"wrapped deadlock", fmt.Errorf("ctx: %w", &rt.DeadlockError{}), 2},
		{"wrapped timeout", fmt.Errorf("ctx: %w", &rt.TimeoutError{}), 3},
		{"wrapped mismatch", fmt.Errorf("ctx: %w", &validate.MismatchError{Tag: "t"}), 4},
		{"wrapped panic", fmt.Errorf("ctx: %w", &rt.StageFailure{}), 5},
		{"queue fault is generic", &rt.QueueFaultError{Thread: 1, Queue: 0}, 1},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}
