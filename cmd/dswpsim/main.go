// Command dswpsim runs a workload on the cycle-level dual-core model under
// a chosen execution scheme and machine configuration, printing cycles,
// per-core IPC, stall breakdowns, and synchronization-array occupancy.
//
//	dswpsim -workload 181.mcf -scheme dswp -width full -comm 1 -qsize 32
//
// The functional engine producing the traces is selectable: the
// deterministic round-robin interpreter (-runtime=interp, optionally with a
// bounded -queuecap), or the goroutine-backed concurrent runtime
// (-runtime=goroutine) with bounded channel queues, watchdog deadlock
// detection, and optional seed-derived fault injection (-faults N). On a
// concurrent-runtime failure the run falls back to sequential execution of
// the original loop and reports the event.
//
//	dswpsim -workload 181.mcf -runtime=goroutine -queuecap=1 -faults=42
//
// -queue selects the communication substrate for the concurrent engines:
// buffered Go channels (default) or the lock-free SPSC ring buffer
// (-queue=ring). -pack enables compiler-side flow packing, coalescing
// same-point flows between a thread pair into multi-word packets that the
// runtime retires with one batched queue operation.
//
//	dswpsim -workload 181.mcf -runtime=goroutine -queue=ring -pack
//
// -validate runs the differential validation harness instead of a timing
// run: interpreter + concurrent runtime across capacity sweeps and
// randomized fault/schedule seeds (reproducible via -seed), diffed against
// sequential execution.
//
//	dswpsim -workload all -validate -seed 7
//
// Observability: -metrics prints the pipeline report (stage utilization,
// queue pressure, fill/drain breakdown) collected from the functional
// engine, -trace FILE exports the produce/consume/stall event trace as
// Chrome trace-event JSON (load it in Perfetto or chrome://tracing), and
// -stats prints the transformation's compile-time pass statistics. The
// workload may also be given as a positional argument:
//
//	dswpsim -runtime=goroutine -trace out.json -metrics listsum
//
// -runtime=supervised runs the fault-tolerant supervisor: cooperative
// cancellation (-deadline), in-place retry of transient injected faults
// (-retries), iteration checkpointing, and sequential resume from the last
// checkpoint on any unrecoverable failure (disable with -resume=false).
// -chaos runs the seed-reproducible chaos soak instead of a timing run.
//
//	dswpsim -runtime=supervised -faults=42 -deadline=10s 181.mcf
//	dswpsim -chaos -seed 7 -runs 200
//
// Exit codes are distinct per failure class (see -h): 2 deadlock,
// 3 timeout, 4 validation mismatch, 5 stage panic, 1 anything else.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dswp/internal/chaos"
	"dswp/internal/core"
	"dswp/internal/doacross"
	"dswp/internal/interp"
	"dswp/internal/ir"
	"dswp/internal/obs"
	"dswp/internal/profile"
	"dswp/internal/psdswp"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
	"dswp/internal/sim"
	"dswp/internal/supervisor"
	"dswp/internal/validate"
	"dswp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "181.mcf", "workload name (dswpc -list shows all; 'all' with -validate)")
	scheme := flag.String("scheme", "dswp", "execution scheme: base | dswp | best | doacross")
	width := flag.String("width", "full", "core width: full | half")
	comm := flag.Int("comm", 1, "inter-core communication latency (cycles)")
	qsize := flag.Int("qsize", 32, "synchronization-array queue depth (timing model)")
	threads := flag.Int("threads", 2, "thread count (doacross supports >2)")
	engine := flag.String("runtime", "interp", "functional engine: interp | goroutine")
	queuecap := flag.Int("queuecap", 0, "functional queue capacity (interp: 0 = unbounded; goroutine: 0 = 32)")
	queueKind := flag.String("queue", "", "communication substrate: channel | ring (default channel; -chaos default mixes both)")
	pack := flag.Bool("pack", false, "coalesce same-point flows into multi-word queue packets (compiler-side flow packing)")
	faults := flag.Uint64("faults", 0, "fault-injection seed for the goroutine runtime (0 = none)")
	seed := flag.Uint64("seed", 1, "randomization seed for -validate (logged for reproduction)")
	doValidate := flag.Bool("validate", false, "run the differential validation harness instead of a timing run")
	traceOut := flag.String("trace", "", "write the functional run's event trace as Chrome trace-event JSON to FILE")
	metrics := flag.Bool("metrics", false, "print the pipeline metrics report for the functional run")
	stats := flag.Bool("stats", false, "print the transformation's compile-time pass statistics")
	deadline := flag.Duration("deadline", 0, "overall wall-clock budget for the supervised runtime (0 = none)")
	retries := flag.Int("retries", 4, "retry budget for transient injected queue faults (supervised runtime)")
	resume := flag.Bool("resume", true, "sequentially resume from the last checkpoint on unrecoverable failure (supervised runtime)")
	ckptEvery := flag.Int64("ckpt", 0, "checkpoint period in outer-loop iterations (supervised runtime; 0 = default)")
	doChaos := flag.Bool("chaos", false, "run the chaos soak harness instead of a timing run")
	runs := flag.Int("runs", 0, "chaos scenario count (0 = 200)")
	budget := flag.Duration("budget", 0, "chaos soak wall-clock budget (0 = none)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		*workload = flag.Arg(0)
	}

	if *doChaos {
		runChaos(*seed, *runs, *budget, *threads, *queueKind)
		return
	}
	if *doValidate {
		runValidation(*workload, *seed)
		return
	}

	p, err := findWorkload(*workload)
	if err != nil {
		fail(err)
	}
	cfg := sim.FullWidth()
	if *width == "half" {
		cfg = sim.HalfWidth()
	}
	cfg = cfg.WithCommLatency(*comm).WithQueueSize(*qsize)

	kind, err := queue.ParseKind(*queueKind)
	if err != nil {
		fail(err)
	}
	runner := &runner{
		engine: *engine, queueCap: *queuecap, queueKind: kind, pack: *pack, faultSeed: *faults,
		instrument: *metrics || *traceOut != "",
		deadline:   *deadline, retries: *retries, resume: *resume, ckptEvery: *ckptEvery,
	}
	traces, passStats, err := buildTraces(p, *scheme, *threads, runner)
	if err != nil {
		fail(err)
	}
	res, err := sim.Run(cfg, traces)
	if err != nil {
		fail(err)
	}

	if *stats {
		if passStats == nil {
			fmt.Printf("pass stats: not available for scheme %q\n\n", *scheme)
		} else {
			fmt.Print(passStats)
			if runner.psReport != nil {
				fmt.Print(runner.psReport)
			}
			fmt.Println()
		}
	}

	fmt.Printf("workload %s, scheme %s, machine %s (comm %d, queues %dx%d)\n",
		p.Name, *scheme, cfg.Name, cfg.CommLatency, cfg.NumQueues, cfg.QueueSize)
	fmt.Printf("cycles: %d   machine IPC: %.2f\n", res.Cycles, res.IPC())
	for i, c := range res.Cores {
		fmt.Printf("core %d: %8d cycles, %8d instrs (+%d flow ops), IPC %.2f, "+
			"stalls full/empty %d/%d, mispredicts %d, L1/L2 misses %d/%d\n",
			i, c.Cycles, c.Instrs, c.FlowOps, c.IPC(),
			c.StallFull, c.StallEmpty, c.Mispredicts, c.L1Misses, c.L2Misses)
	}
	if len(res.Cores) > 1 {
		occ := res.Occ
		total := float64(occ.Total())
		fmt.Printf("occupancy: %.1f%% full/producer-stalled, %.1f%% balanced, "+
			"%.1f%% empty/active, %.1f%% empty/consumer-stalled\n",
			100*float64(occ.FullProducerStalled)/total,
			100*float64(occ.BalancedBothActive)/total,
			100*float64(occ.EmptyBothActive)/total,
			100*float64(occ.EmptyConsumerStalled)/total)
	}

	names := make([]string, len(traces))
	for i, tr := range traces {
		names[i] = tr.Fn.Name
	}
	if *metrics {
		fmt.Println()
		fmt.Print(obs.FormatReport(runner.metrics, names))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := runner.trace.WriteChrome(f, names); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace (%d events) to %s\n", len(runner.trace.Events()), *traceOut)
		if lost := runner.trace.Lost(); lost > 0 {
			fmt.Printf("note: ring buffers wrapped, oldest %d events lost\n", lost)
		}
	}
}

// usage extends the default flag help with the exit-code contract, so
// scripts and CI can branch on failure class without parsing stderr.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "usage: dswpsim [flags] [workload]\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(out, `
Exit codes:
  0  success
  1  generic failure (bad flags, unknown workload, I/O error)
  2  pipeline deadlock (runtime.DeadlockError)
  3  watchdog timeout (runtime.TimeoutError)
  4  differential validation mismatch (validate.MismatchError)
  5  stage panic (runtime.StageFailure)
`)
}

func runChaos(seed uint64, runs int, budget time.Duration, threads int, kindFlag string) {
	fmt.Printf("chaos seed %d (reproduce with -chaos -seed %d)\n", seed, seed)
	opts := chaos.Options{
		Seed: seed, Runs: runs, Budget: budget, Threads: threads,
		Logf: func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
	}
	// An unset -queue mixes both substrates across the soak; an explicit
	// one forces every run onto it (e.g. -queue=ring for the ring soak).
	if kindFlag == "" || kindFlag == "mix" {
		opts.Mix = true
	} else {
		kind, err := queue.ParseKind(kindFlag)
		if err != nil {
			fail(err)
		}
		opts.Queue = kind
	}
	rep := chaos.Soak(opts)
	if !rep.OK() {
		fail(fmt.Errorf("chaos contract violated (seed %d): %s", seed, rep))
	}
}

func runValidation(workload string, seed uint64) {
	// Always log the seed up front — a reproduction must not depend on a
	// failure (or any particular report line) being printed.
	fmt.Printf("validation seed %d (reproduce with -validate -seed %d)\n", seed, seed)
	opts := validate.Options{Seed: seed, Logf: func(f string, a ...any) {
		fmt.Printf(f+"\n", a...)
	}}
	var reps []*validate.Report
	if workload == "all" {
		reps = validate.Suite(opts)
	} else {
		p, err := findWorkload(workload)
		if err != nil {
			fail(err)
		}
		reps = []*validate.Report{validate.Program(p, opts)}
	}
	failed := 0
	for _, rep := range reps {
		fmt.Println(rep)
		if !rep.OK() {
			failed++
		}
	}
	if failed > 0 {
		// Divergence is the harness's headline failure; exit with the
		// mismatch code so CI can tell "wrong answer" from plumbing errors.
		fail(&validate.MismatchError{Tag: "validate", Word: -1,
			Detail: fmt.Sprintf("%d workload(s) failed validation (seed %d)", failed, seed)})
	}
}

func findWorkload(name string) (*workloads.Program, error) {
	switch name {
	case "list-traversal":
		return workloads.ListTraversal(2000), nil
	case "list-of-lists", "listsum":
		return workloads.ListOfLists(100, 6), nil
	}
	for _, wb := range append(append(workloads.Table1Suite(), workloads.CaseStudies()...), workloads.ReplicationSuite()...) {
		if wb.Name == name {
			return wb.Build(), nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// runner selects the functional engine that executes thread functions and
// produces the traces the timing model replays.
type runner struct {
	engine    string
	queueCap  int
	queueKind queue.Kind
	pack      bool
	faultSeed uint64

	// Supervised-runtime policy knobs (-deadline, -retries, -resume,
	// -ckpt); regOwner is filled by buildTraces from the transformation so
	// the supervisor can checkpoint.
	deadline  time.Duration
	retries   int
	resume    bool
	ckptEvery int64
	regOwner  []int

	// instrument attaches metrics + trace recorders to the functional run;
	// after execute they hold the collected data.
	instrument bool
	metrics    *obs.Metrics
	trace      *obs.Trace

	// psReport is the PS-DSWP replication analysis of the transformed
	// pipeline (dswp/best schemes only), printed alongside -stats.
	psReport *psdswp.Report
}

// recorder builds the instrumentation sink for a run of nThreads threads
// over nQueues queues, with tick units matching the engine (retired steps
// for the interpreter, nanoseconds for the goroutine runtime).
func (r *runner) recorder(nThreads, nQueues int) obs.Recorder {
	if !r.instrument {
		return nil
	}
	r.metrics = obs.NewMetrics(nThreads, nQueues)
	r.trace = obs.NewTrace(nThreads, 0)
	if r.engine == "" || r.engine == "interp" {
		r.metrics.Unit = "steps"
		r.trace.MicrosPerTick = 1.0
	} else {
		r.metrics.Unit = "ns"
	}
	return obs.Multi(r.metrics, r.trace)
}

// execute runs fns under the selected engine. p supplies live-ins, the
// memory image, and (for the goroutine runtime) the original function for
// the sequential fallback; numQueues feeds fault derivation and recorder
// sizing.
func (r *runner) execute(fns []*ir.Function, p *workloads.Program, numQueues int, opts interp.Options) ([]*interp.ThreadResult, error) {
	switch r.engine {
	case "", "interp":
		opts.Recorder = r.recorder(len(fns), numQueues)
		res, err := interp.RunThreads(fns, opts)
		if err != nil {
			return nil, err
		}
		return res.Threads, nil
	case "goroutine":
		ropts := rt.Options{
			QueueCap: r.queueCap, Queue: r.queueKind, Regs: p.Regs, Mem: p.Mem, RecordTrace: true,
			Recorder: r.recorder(len(fns), numQueues),
		}
		if r.faultSeed != 0 {
			ropts.Faults = rt.RandomFaults(r.faultSeed, len(fns), numQueues)
		}
		res, report, err := rt.RunWithFallback(fns, p.F, ropts)
		if err != nil {
			return nil, err
		}
		if report.FellBack {
			fmt.Fprintf(os.Stderr,
				"dswpsim: concurrent runtime failed, fell back to sequential execution: %v\n", report.Cause)
		}
		return res.Threads, nil
	case "supervised":
		pol := supervisor.Policy{
			QueueCap:        r.queueCap,
			Queue:           r.queueKind,
			Deadline:        r.deadline,
			Retry:           rt.RetryPolicy{MaxAttempts: r.retries},
			CheckpointEvery: r.ckptEvery,
			DisableResume:   !r.resume,
			RecordTrace:     true,
			Recorder:        r.recorder(len(fns), numQueues),
		}
		if r.faultSeed != 0 {
			pol.Faults = rt.RandomFaults(r.faultSeed, len(fns), numQueues)
		}
		res, srep, err := supervisor.Run(context.Background(), supervisor.Pipeline{
			Threads: fns, Original: p.F, LoopHeader: p.LoopHeader,
			RegOwner: r.regOwner, Mem: p.Mem, Regs: p.Regs,
		}, pol)
		if err != nil {
			return nil, err
		}
		if srep.Failure != nil {
			from := "scratch"
			if srep.ResumeIter >= 0 {
				from = fmt.Sprintf("iteration %d (%d checkpoints committed)", srep.ResumeIter, srep.Checkpoints)
			}
			fmt.Fprintf(os.Stderr,
				"dswpsim: supervised attempt failed (%v), resumed sequentially from %s\n", srep.Failure, from)
		}
		return res.Threads, nil
	}
	return nil, fmt.Errorf("unknown runtime %q (want interp, goroutine, or supervised)", r.engine)
}

// countQueues sizes the synchronization array used by a thread set.
func countQueues(fns []*ir.Function) int {
	n := 0
	for _, fn := range fns {
		fn.Instrs(func(in *ir.Instr) {
			if in.Op.IsFlow() && in.Queue+1 > n {
				n = in.Queue + 1
			}
		})
	}
	return n
}

func buildTraces(p *workloads.Program, scheme string, threads int, r *runner) ([]*interp.ThreadResult, *obs.PassStats, error) {
	opts := p.Options()
	opts.RecordTrace = true
	opts.QueueCap = r.queueCap
	switch scheme {
	case "base":
		opts.Recorder = r.recorder(1, 0)
		res, err := interp.Run(p.F, opts)
		if err != nil {
			return nil, nil, err
		}
		return res.Threads, nil, nil
	case "dswp", "best":
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			return nil, nil, err
		}
		a, err := core.Analyze(p.F, p.LoopHeader, prof, core.Config{NumThreads: threads, PackFlows: r.pack})
		if err != nil {
			return nil, nil, err
		}
		if a.NumSCCs() == 1 {
			return nil, nil, fmt.Errorf("%s: single SCC, DSWP not applicable", p.Name)
		}
		part := a.Heuristic()
		if scheme == "best" {
			best := part
			bestCycles := int64(-1)
			for _, cand := range a.Enumerate(512) {
				tr, err := a.Transform(cand)
				if err != nil {
					continue
				}
				run, err := interp.RunThreads(tr.Threads, opts)
				if err != nil {
					continue
				}
				res, err := sim.Run(sim.FullWidth(), run.Threads)
				if err != nil {
					continue
				}
				if bestCycles < 0 || res.Cycles < bestCycles {
					bestCycles = res.Cycles
					best = cand
				}
			}
			part = best
		}
		tr, err := a.Transform(part)
		if err != nil {
			return nil, nil, err
		}
		r.psReport = psdswp.Analyze(tr)
		tr.Stats.ReplicableSCCs = r.psReport.ReplicableSCCs()
		r.regOwner = tr.RegOwner
		traces, err := r.execute(tr.Threads, p, tr.NumQueues, opts)
		return traces, tr.Stats, err
	case "doacross":
		fns, err := doacross.Transform(p.F, p.LoopHeader, threads)
		if err != nil {
			return nil, nil, err
		}
		traces, err := r.execute(fns, p, countQueues(fns), opts)
		return traces, nil, err
	}
	return nil, nil, fmt.Errorf("unknown scheme %q", scheme)
}

// exitCode maps a failure to the CLI's exit-code contract (see usage):
// distinct nonzero codes per error class so scripts and CI can branch on
// what went wrong without parsing stderr.
func exitCode(err error) int {
	var (
		de *rt.DeadlockError
		te *rt.TimeoutError
		me *validate.MismatchError
		sf *rt.StageFailure
	)
	switch {
	case errors.As(err, &de):
		return 2
	case errors.As(err, &te):
		return 3
	case errors.As(err, &me):
		return 4
	case errors.As(err, &sf):
		return 5
	}
	return 1
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dswpsim:", err)
	os.Exit(exitCode(err))
}
