// Command dswpsim runs a workload on the cycle-level dual-core model under
// a chosen execution scheme and machine configuration, printing cycles,
// per-core IPC, stall breakdowns, and synchronization-array occupancy.
//
//	dswpsim -workload 181.mcf -scheme dswp -width full -comm 1 -qsize 32
package main

import (
	"flag"
	"fmt"
	"os"

	"dswp/internal/core"
	"dswp/internal/doacross"
	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/sim"
	"dswp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "181.mcf", "workload name (dswpc -list shows all)")
	scheme := flag.String("scheme", "dswp", "execution scheme: base | dswp | best | doacross")
	width := flag.String("width", "full", "core width: full | half")
	comm := flag.Int("comm", 1, "inter-core communication latency (cycles)")
	qsize := flag.Int("qsize", 32, "synchronization-array queue depth")
	threads := flag.Int("threads", 2, "thread count (doacross supports >2)")
	flag.Parse()

	p, err := findWorkload(*workload)
	if err != nil {
		fail(err)
	}
	cfg := sim.FullWidth()
	if *width == "half" {
		cfg = sim.HalfWidth()
	}
	cfg = cfg.WithCommLatency(*comm).WithQueueSize(*qsize)

	traces, err := buildTraces(p, *scheme, *threads)
	if err != nil {
		fail(err)
	}
	res, err := sim.Run(cfg, traces)
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload %s, scheme %s, machine %s (comm %d, queues %dx%d)\n",
		p.Name, *scheme, cfg.Name, cfg.CommLatency, cfg.NumQueues, cfg.QueueSize)
	fmt.Printf("cycles: %d   machine IPC: %.2f\n", res.Cycles, res.IPC())
	for i, c := range res.Cores {
		fmt.Printf("core %d: %8d cycles, %8d instrs (+%d flow ops), IPC %.2f, "+
			"stalls full/empty %d/%d, mispredicts %d, L1/L2 misses %d/%d\n",
			i, c.Cycles, c.Instrs, c.FlowOps, c.IPC(),
			c.StallFull, c.StallEmpty, c.Mispredicts, c.L1Misses, c.L2Misses)
	}
	if len(res.Cores) > 1 {
		occ := res.Occ
		total := float64(occ.Total())
		fmt.Printf("occupancy: %.1f%% full/producer-stalled, %.1f%% balanced, "+
			"%.1f%% empty/active, %.1f%% empty/consumer-stalled\n",
			100*float64(occ.FullProducerStalled)/total,
			100*float64(occ.BalancedBothActive)/total,
			100*float64(occ.EmptyBothActive)/total,
			100*float64(occ.EmptyConsumerStalled)/total)
	}
}

func findWorkload(name string) (*workloads.Program, error) {
	switch name {
	case "list-traversal":
		return workloads.ListTraversal(2000), nil
	case "list-of-lists":
		return workloads.ListOfLists(100, 6), nil
	}
	for _, wb := range append(workloads.Table1Suite(), workloads.CaseStudies()...) {
		if wb.Name == name {
			return wb.Build(), nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func buildTraces(p *workloads.Program, scheme string, threads int) ([]*interp.ThreadResult, error) {
	opts := p.Options()
	opts.RecordTrace = true
	switch scheme {
	case "base":
		res, err := interp.Run(p.F, opts)
		if err != nil {
			return nil, err
		}
		return res.Threads, nil
	case "dswp", "best":
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			return nil, err
		}
		a, err := core.Analyze(p.F, p.LoopHeader, prof, core.Config{NumThreads: threads})
		if err != nil {
			return nil, err
		}
		if a.NumSCCs() == 1 {
			return nil, fmt.Errorf("%s: single SCC, DSWP not applicable", p.Name)
		}
		part := a.Heuristic()
		if scheme == "best" {
			best := part
			bestCycles := int64(-1)
			for _, cand := range a.Enumerate(512) {
				tr, err := a.Transform(cand)
				if err != nil {
					continue
				}
				run, err := interp.RunThreads(tr.Threads, opts)
				if err != nil {
					continue
				}
				res, err := sim.Run(sim.FullWidth(), run.Threads)
				if err != nil {
					continue
				}
				if bestCycles < 0 || res.Cycles < bestCycles {
					bestCycles = res.Cycles
					best = cand
				}
			}
			part = best
		}
		tr, err := a.Transform(part)
		if err != nil {
			return nil, err
		}
		res, err := interp.RunThreads(tr.Threads, opts)
		if err != nil {
			return nil, err
		}
		return res.Threads, nil
	case "doacross":
		fns, err := doacross.Transform(p.F, p.LoopHeader, threads)
		if err != nil {
			return nil, err
		}
		res, err := interp.RunThreads(fns, opts)
		if err != nil {
			return nil, err
		}
		return res.Threads, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", scheme)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dswpsim:", err)
	os.Exit(1)
}
