// Command dswpexp regenerates the paper's evaluation artifacts: every
// table and figure has an experiment id. With no flags it runs everything.
//
//	dswpexp -exp table1,stats,fig6a,fig6b,fig7,fig8,fig9a,fig9b,qsize,fig1,depth,cases
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dswp/internal/exp"
	"dswp/internal/sim"
)

func main() {
	expFlag := flag.String("exp", "all",
		"comma-separated experiments: table1,stats,fig6a,fig6b,fig7,fig8,fig9a,fig9b,qsize,fig1,depth,cases")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	full := sim.FullWidth()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dswpexp:", err)
		os.Exit(1)
	}

	if sel("table1") {
		rows, err := exp.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTable1(rows))
	}
	if sel("stats") {
		rows, err := exp.PassStatsAll()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderPassStats(rows))
	}

	var fig6 []exp.Fig6Row
	needFig6 := sel("fig6a") || sel("fig6b") || sel("fig8")
	if needFig6 {
		var err error
		fig6, err = exp.Fig6(full)
		if err != nil {
			fail(err)
		}
	}
	if sel("fig6a") {
		fmt.Println(exp.RenderFig6a(fig6))
	}
	if sel("fig6b") {
		fmt.Println(exp.RenderFig6b(fig6))
	}
	if sel("fig7") {
		cuts, autoP1, err := exp.Fig7(full)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderFig7(cuts, autoP1))
	}
	if sel("fig8") {
		fmt.Println(exp.RenderFig8(exp.Fig8(fig6)))
	}
	if sel("fig9a") {
		rows, err := exp.Fig9a()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderFig9a(rows))
	}
	if sel("fig9b") {
		rows, err := exp.Fig9b()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderFig9b(rows))
	}
	if sel("qsize") {
		rows, err := exp.QueueSize()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderQueueSize(rows))
	}
	if sel("fig1") {
		rows, err := exp.Fig1(4000)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderFig1(rows))
	}
	if sel("depth") {
		rows, err := exp.PipelineDepth(full)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderDepth(rows))
	}
	if sel("cases") || sel("cs-epic") {
		r, err := exp.CaseEpic(full)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCaseEpic(r))
	}
	if sel("cases") || sel("cs-adpcm") {
		r, err := exp.CaseAdpcm(full)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCaseAdpcm(r))
	}
	if sel("cases") || sel("cs-art") {
		r, err := exp.CaseArt(full)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCaseArt(r))
	}
	if sel("cases") || sel("cs-gzip") {
		r, err := exp.CaseGzip()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCaseGzip(r))
	}
}
