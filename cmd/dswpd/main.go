// Command dswpd is the pipeline-as-a-service daemon: it serves DSWP
// compilation and execution over HTTP, backed by the internal/engine
// subsystem — compiled-pipeline cache, warm instance pools, and bounded
// admission control.
//
//	dswpd                      # listen on :7537
//	dswpd -addr :8080 -workers 4 -queue ring
//
// Endpoints (all JSON, stdlib net/http):
//
//	POST /run                 {"workload":"181.mcf", ...}   execute a pipeline
//	GET  /metrics             serving counters + latency histograms (JSON;
//	                          Prometheus text under Accept negotiation)
//	GET  /healthz             liveness (503 while draining)
//	GET  /workloads           workloads with compile/breaker status
//	GET  /debug/requests      tail-sampled request traces (and /{id})
//	GET  /debug/vars          windowed time-series + per-workload profiles
//
// -debug-addr opens a second listener carrying the same debug surface
// plus net/http/pprof — profiling stays off the serving port.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops accepting,
// queued requests fail with 503, and in-flight runs get -drain-timeout
// to finish before being hard-canceled through their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dswp/internal/ckptstore"
	"dswp/internal/engine"
	"dswp/internal/queue"
	"dswp/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":7537", "listen address")
		workers    = flag.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "independent serving shards (0 = GOMAXPROCS, clamped to workers)")
		pinStages  = flag.Bool("pin-stages", false, "pin each pipeline stage goroutine to its own OS thread")
		queueDepth = flag.Int("queue-depth", 0, "pending-request bound (0 = 4*workers)")
		cacheCap   = flag.Int("cache-cap", 32, "max cached compiled pipelines")
		poolSize   = flag.Int("pool", 0, "warm instances per pipeline (0 = workers)")
		queueKind  = flag.String("queue", "channel", "default substrate: channel or ring")
		replicate  = flag.Bool("replicate", false, "apply PS-DSWP parallel-stage replication to every compile")
		queueCap   = flag.Int("queue-cap", 0, "default synchronization-array capacity (0 = 32)")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		noCache    = flag.Bool("no-cache", false, "disable the compiled-pipeline cache")
		noPool     = flag.Bool("no-pool", false, "disable warm instance pools")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown grace for in-flight runs")
		ckptDir    = flag.String("ckpt-dir", "", "directory for the durable checkpoint store (empty = in-memory)")
		ckptEvery  = flag.Int64("ckpt-every", 0, "checkpoint commit period in iterations (0 = 64)")
		retries    = flag.Int("retries", 0, "sequential retries per failed pipelined run (0 = 2, negative disables)")
		breakerK   = flag.Int("breaker-k", 0, "consecutive failures tripping a workload to sequential (0 = 3, negative disables)")
		breakerCD  = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 5s)")

		maxBody       = flag.Int64("max-body", 0, "max /run request-body bytes (0 = 1MiB, negative disables)")
		maxInflightB  = flag.Int64("max-inflight-bytes", 256<<20, "global in-flight run working-set budget in bytes (0 = unlimited)")
		maxRequestB   = flag.Int64("max-request-bytes", 64<<20, "per-run working-set cap in bytes (0 = unlimited)")
		reapAfter     = flag.Duration("reap-after", 60*time.Second, "force-cancel runs executing longer than this (0 = disabled)")
		readHeaderTmo = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read timeout (slow-loris guard)")
		readTmo       = flag.Duration("read-timeout", 30*time.Second, "HTTP full-request read timeout (slow-body guard)")
		writeTmo      = flag.Duration("write-timeout", 2*time.Minute, "HTTP response write timeout (slow-client guard)")

		debugAddr   = flag.String("debug-addr", "", "second listener with the debug surface + net/http/pprof (empty = off)")
		noTelemetry = flag.Bool("no-telemetry", false, "disable request tracing (windowed series stay on)")
		traceCap    = flag.Int("trace-cap", 0, "retained request traces (0 = 256)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of ordinary requests tail-sampled (0 = 0.01, negative disables)")
		traceSlow   = flag.Duration("trace-slow", 0, "latency above which every request's trace is kept (0 = 50ms, negative disables)")
	)
	flag.Parse()

	kind, err := queue.ParseKind(*queueKind)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dswpd: %v\n", err)
		os.Exit(2)
	}
	var store ckptstore.Store
	if *ckptDir != "" {
		fs, err := ckptstore.OpenFile(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dswpd: %v\n", err)
			os.Exit(2)
		}
		// Durability-degrade events (a key's commits disabled after
		// ENOSPC or a failed fsync) are operator-visible, one line each.
		fs.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dswpd: "+format+"\n", args...)
		}
		store = fs
	}
	eng := engine.New(engine.Options{
		Workers:          *workers,
		Shards:           *shards,
		PinStages:        *pinStages,
		QueueDepth:       *queueDepth,
		CacheCap:         *cacheCap,
		PoolSize:         *poolSize,
		QueueCap:         *queueCap,
		Queue:            kind,
		Replicate:        *replicate,
		DefaultDeadline:  *deadline,
		DisableCache:     *noCache,
		DisablePool:      *noPool,
		Store:            store,
		CheckpointEvery:  *ckptEvery,
		Retries:          *retries,
		BreakerThreshold: *breakerK,
		BreakerCooldown:  *breakerCD,
		MaxBodyBytes:     *maxBody,
		MaxInFlightBytes: *maxInflightB,
		MaxRequestBytes:  *maxRequestB,
		ReapAfter:        *reapAfter,
		Telemetry: telemetry.TraceOptions{
			Disable:       *noTelemetry,
			Capacity:      *traceCap,
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
		},
	})

	// Crash recovery runs before the listener opens: any checkpoint
	// entries present were in flight when a previous process died — finish
	// them from their last durable commit, GC what cannot be trusted, and
	// surface the stats in /healthz.
	if rec, err := eng.Recover(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "dswpd: recovery: %v\n", err)
		os.Exit(1)
	} else if rec.Scanned > 0 {
		fmt.Printf("dswpd: recovered %d orphaned run(s) (%d scanned, %d gced, %d corrupt)\n",
			rec.Resumed, rec.Scanned, rec.GCed, rec.Corrupt)
	}

	// Server-side timeouts bound client misbehavior: a slow-loris header
	// dribble, a body that never finishes, a reader that never drains the
	// response. Each costs the abuser their connection, not a goroutine.
	srv := &http.Server{Addr: *addr, Handler: engine.NewMux(eng),
		ReadHeaderTimeout: *readHeaderTmo,
		ReadTimeout:       *readTmo,
		WriteTimeout:      *writeTmo,
		MaxHeaderBytes:    1 << 16,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("dswpd: serving on %s (%d workloads)\n", *addr, len(engine.Workloads()))

	// The optional debug listener carries the full engine surface (so the
	// debug endpoints work there too) plus pprof, explicitly registered —
	// importing net/http/pprof's side effects onto the serving mux would
	// expose profiling on the public port.
	var dbg *http.Server
	if *debugAddr != "" {
		dmux := engine.NewMux(eng)
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "dswpd: debug listener failed: %v\n", err)
			}
		}()
		fmt.Printf("dswpd: debug surface on %s\n", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("dswpd: %v, draining (grace %s)\n", s, *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "dswpd: listener failed: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new requests arrive mid-drain, then
	// drain the engine under the same grace period.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dswpd: http shutdown: %v\n", err)
	}
	if dbg != nil {
		_ = dbg.Shutdown(ctx)
	}
	if err := eng.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dswpd: engine drain exceeded grace, in-flight runs canceled: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("dswpd: drained cleanly")
}
