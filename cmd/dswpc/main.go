// Command dswpc is the DSWP compiler driver: it takes a loop (from a
// built-in workload or a textual IR file), builds the dependence graph and
// DAG_SCC, partitions it, and prints the transformed thread functions with
// their flows — the compiler's-eye view of Figure 2.
//
//	dswpc -workload list-of-lists
//	dswpc -file loop.ir -loop header
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dswp/internal/core"
	"dswp/internal/interp"
	"dswp/internal/ir"
	"dswp/internal/obs"
	"dswp/internal/profile"
	"dswp/internal/psdswp"
	"dswp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "built-in workload name (see -list)")
	list := flag.Bool("list", false, "list built-in workloads")
	file := flag.String("file", "", "textual IR file containing one func")
	loop := flag.String("loop", "", "loop header block name (required with -file)")
	threads := flag.Int("threads", 2, "pipeline depth")
	force := flag.Bool("force", false, "skip the profitability test")
	showIR := flag.Bool("ir", true, "print the transformed thread functions")
	dot := flag.String("dot", "", "emit Graphviz instead of a report: dep | dag")
	stats := flag.Bool("stats", false, "print compile-time pass statistics instead of the full report (-workload all covers every workload)")
	flag.Parse()

	if *stats {
		runStats(*workload, *file, *loop, *threads)
		return
	}

	if *list {
		for _, wb := range append(append(workloads.Table1Suite(), workloads.CaseStudies()...), workloads.ReplicationSuite()...) {
			p := wb.Build()
			fmt.Printf("%-20s %s\n", p.Name, p.Description)
		}
		fmt.Printf("%-20s %s\n", "list-traversal", workloads.ListTraversal(8).Description)
		fmt.Printf("%-20s %s\n", "list-of-lists", workloads.ListOfLists(2, 2).Description)
		return
	}

	p, err := selectProgram(*workload, *file, *loop)
	if err != nil {
		fail(err)
	}

	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		fail(fmt.Errorf("profiling run: %w", err))
	}
	cfg := core.Config{NumThreads: *threads, SkipProfitability: *force}
	a, err := core.Analyze(p.F, p.LoopHeader, prof, cfg)
	if err != nil {
		fail(err)
	}

	switch *dot {
	case "dep":
		fmt.Print(a.G.DOT(a.Cond))
		return
	case "dag":
		var assign []int
		if a.NumSCCs() > 1 {
			assign = a.Heuristic().Assign
		}
		fmt.Print(a.G.DAGDOT(a.Cond, assign))
		return
	case "":
	default:
		fail(fmt.Errorf("unknown -dot mode %q (want dep or dag)", *dot))
	}

	fmt.Printf("loop %s in %s: %d instructions, %d dependence arcs, %d SCCs\n",
		p.LoopHeader, p.F.Name, len(a.G.Instrs), len(a.G.Arcs), a.NumSCCs())
	fmt.Println("\nDAG_SCC (topological order; weight = profiled cycles):")
	for i, comp := range a.Cond.Comps {
		fmt.Printf("  SCC %2d  weight %-10d instrs:", i, a.Weights[i])
		for _, v := range comp {
			fmt.Printf(" [%s]", a.G.Instrs[v])
		}
		fmt.Println()
		succs := append([]int(nil), a.Cond.DAG.Succs(i)...)
		sort.Ints(succs)
		if len(succs) > 0 {
			fmt.Printf("          -> %v\n", succs)
		}
	}

	if a.NumSCCs() == 1 {
		fmt.Println("\nsingle SCC: DSWP not applicable (Figure 3 step 3)")
		os.Exit(2)
	}
	part := a.Heuristic()
	fmt.Printf("\nTPP heuristic partitioning (%d stages): %v\n", part.N, part.Assign)
	fmt.Printf("stage weights: %v\n", part.StageWeights())
	if part.N == 1 || (!*force && !core.Profitable(part, prof, 0.02)) {
		fmt.Println("estimated unprofitable: DSWP bails out (Figure 3 step 6); use -force to override")
		os.Exit(2)
	}

	tr, err := a.Transform(part)
	if err != nil {
		fail(err)
	}
	initF, loopF, finF := tr.FlowCounts()
	fmt.Printf("\nflows: %d initial, %d loop, %d final (%d queues)\n", initF, loopF, finF, tr.NumQueues)
	for _, fl := range tr.Flows {
		var src string
		switch {
		case fl.Source != nil:
			src = fl.Source.String()
		case fl.Pos == core.FlowFinal:
			src = fmt.Sprintf("(live-out %s)", fl.Reg)
		default:
			src = fmt.Sprintf("(live-in %s)", fl.Reg)
		}
		fmt.Printf("  queue %-3d %-7s %-7s thread %d -> %d  %s\n",
			fl.Queue, fl.Kind, fl.Pos, fl.From, fl.To, src)
	}
	if *showIR {
		for i, th := range tr.Threads {
			fmt.Printf("\n--- thread %d ---\n%s", i, th)
		}
	}

	// Always validate before declaring success.
	base, err := interp.Run(p.F, p.Options())
	if err != nil {
		fail(err)
	}
	multi, err := interp.RunThreads(tr.Threads, p.Options())
	if err != nil {
		fail(fmt.Errorf("transformed code failed: %w", err))
	}
	if d := base.Mem.Diff(multi.Mem); d != -1 {
		fail(fmt.Errorf("BUG: memory diverges at word %d", d))
	}
	fmt.Println("\nequivalence check: transformed threads match the original run")
}

// runStats prints the transformation's compile-time self-report for one
// workload or, with "all", every built-in workload. Loops DSWP bails out
// on (single SCC, one-stage partition) get an analysis-only report rather
// than an error — the statistics are precisely how those bailouts are
// understood.
func runStats(workload, file, loop string, threads int) {
	var progs []*workloads.Program
	if workload == "all" {
		progs = append(progs, workloads.ListTraversal(2000), workloads.ListOfLists(100, 6))
		for _, wb := range append(append(workloads.Table1Suite(), workloads.CaseStudies()...), workloads.ReplicationSuite()...) {
			progs = append(progs, wb.Build())
		}
	} else {
		p, err := selectProgram(workload, file, loop)
		if err != nil {
			fail(err)
		}
		progs = []*workloads.Program{p}
	}
	for i, p := range progs {
		if i > 0 {
			fmt.Println()
		}
		st, rep, err := statsFor(p, threads)
		if err != nil {
			fail(fmt.Errorf("%s: %w", p.Name, err))
		}
		fmt.Printf("workload %s\n", p.Name)
		fmt.Print(st)
		if rep != nil {
			fmt.Print(rep)
		}
	}
}

// statsFor runs analysis (and, where a pipeline exists, the transformation)
// to produce the pass statistics for one program. Where the transformation
// yields a pipeline, the PS-DSWP replication analysis runs on top of it and
// its per-stage decisions — including why a stage cannot be replicated —
// come back alongside the stats.
func statsFor(p *workloads.Program, threads int) (*obs.PassStats, *psdswp.Report, error) {
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		return nil, nil, err
	}
	a, err := core.Analyze(p.F, p.LoopHeader, prof, core.Config{
		NumThreads: threads, SkipProfitability: true,
	})
	if err != nil {
		return nil, nil, err
	}
	if a.NumSCCs() == 1 {
		return a.Stats(), nil, nil
	}
	part := a.Heuristic()
	if part.N == 1 {
		return a.Stats(), nil, nil
	}
	tr, err := a.Transform(part)
	if err != nil {
		return nil, nil, err
	}
	rep := psdswp.Analyze(tr)
	tr.Stats.ReplicableSCCs = rep.ReplicableSCCs()
	return tr.Stats, rep, nil
}

func selectProgram(workload, file, loop string) (*workloads.Program, error) {
	switch {
	case workload != "":
		switch workload {
		case "list-traversal":
			return workloads.ListTraversal(2000), nil
		case "list-of-lists", "listsum":
			return workloads.ListOfLists(100, 6), nil
		}
		for _, wb := range append(append(workloads.Table1Suite(), workloads.CaseStudies()...), workloads.ReplicationSuite()...) {
			if wb.Name == workload {
				return wb.Build(), nil
			}
		}
		return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
	case file != "":
		if loop == "" {
			return nil, fmt.Errorf("-file requires -loop HEADER")
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		f, err := ir.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return &workloads.Program{
			Name: file, F: f, LoopHeader: loop,
			Mem: interp.MemoryFor(f), Coverage: 1,
		}, nil
	}
	return nil, fmt.Errorf("need -workload NAME or -file FILE -loop HEADER")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dswpc:", err)
	os.Exit(1)
}
