// Command dswpload is the closed-loop load generator for the serving
// engine (internal/engine, cmd/dswpd). It answers the question the
// engine exists to answer: how much does the compile-once/serve-many
// split buy under concurrent load?
//
// Two modes:
//
//	dswpload                      # in-process: benchmark cold vs cached
//	                              # vs warm-pooled serving paths
//	dswpload -benchjson           # ... and pin BENCH_PR5.json
//	dswpload -ramp -slo 50ms      # double clients until the p99 SLO breaks
//	dswpload -addr localhost:7537 # drive a running dswpd over HTTP
//
// In-process mode measures four serving paths, each comparison holding
// everything but one engine mechanism constant:
//
//	cold             — cache and pools disabled, sequential execution:
//	                   every request pays profile + core.Apply;
//	cached           — pipeline cache on, same sequential execution:
//	                   the delta vs cold is exactly the compile the
//	                   cache amortizes (headline: >= 10x throughput);
//	cached-pipelined — cache on, pools off, supervised pipeline
//	                   execution (the serving default);
//	warm-pipelined   — cache and warm instance pools on: the delta vs
//	                   cached-pipelined is exactly the per-run queue /
//	                   register-file state the pools reuse.
//
// An explicit -mode collapses the table to cold/cached/warm in that one
// execution mode. Each path runs the same closed loop: -clients
// goroutines issue requests from the -mix continuously for -duration,
// every response is checked bit-identical against the engine's own
// sequential reference, and per-request latencies are recorded exactly.
// The summary reports throughput and p50/p99/mean latency per path.
//
// HTTP mode drives POST /run on a live daemon with the same closed
// loop and consistency check (identical requests must return identical
// digests), tallying status codes; 429s count as shed load, not
// errors. The CI server-smoke job runs this briefly against a freshly
// built dswpd.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dswp/internal/engine"
	"dswp/internal/queue"
	"dswp/internal/telemetry"
)

// benchFile is the BENCH_PR5.json shape. Latency quantiles are exact
// (computed from the full per-request sample, not histogram buckets);
// throughput_rps counts only completed requests.
type benchFile struct {
	Schema     string   `json:"schema"`
	Quick      bool     `json:"quick"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Workers    int      `json:"workers"`
	Clients    int      `json:"clients"`
	DurationMS int64    `json:"duration_ms"`
	Mix        []string `json:"workload_mix"`

	Paths []pathResult `json:"paths"`

	// CachedVsCold is the headline: cached-path throughput over
	// cold-compile throughput (acceptance: >= 10).
	CachedVsCold float64 `json:"cached_vs_cold_throughput"`
	// WarmVsCached isolates the instance pools' win on top of the cache.
	WarmVsCached float64 `json:"warm_vs_cached_throughput"`
}

// pathResult is one serving path's closed-loop measurement.
type pathResult struct {
	Path          string  `json:"path"` // cold | cached | cached-pipelined | warm-pipelined | http
	Mode          string  `json:"mode,omitempty"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Shed          int     `json:"shed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50US         int64   `json:"p50_us"`
	P99US         int64   `json:"p99_us"`
	P999US        int64   `json:"p999_us"`
	MeanUS        int64   `json:"mean_us"`
	// Engine-side counters for the in-process paths (zero in HTTP mode).
	Compiles  int64 `json:"compiles,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
	PoolHits  int64 `json:"pool_hits,omitempty"`
	// ShardRequests is the per-shard request count: home-shard routing
	// attribution from the engine snapshot for in-process paths, the
	// executing shard stamped on each response in HTTP mode.
	ShardRequests []int64 `json:"shard_requests,omitempty"`
	// ShardImbalance is max(ShardRequests)/mean(ShardRequests); 1.0 is a
	// perfectly even spread, 0 means no shard data.
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
	// ErrorsByClass tallies failed requests by the engine's typed error
	// class ("deadlock", "timeout", "stage-panic", "shed", ...),
	// mirroring the engine's error taxonomy in the load report.
	ErrorsByClass map[string]int `json:"errors_by_class,omitempty"`
	// LatencyByClass breaks non-success latency down by the same classes
	// (shed requests included): how long did failures take to fail?
	LatencyByClass map[string]classLatency `json:"latency_by_class,omitempty"`
}

// classLatency summarizes one error class's latency distribution.
type classLatency struct {
	Count  int   `json:"count"`
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	MeanUS int64 `json:"mean_us"`
}

// rampResult is the -ramp output: client count doubled step by step until
// the p99 SLO breaches (or the cap), on the full warm serving path.
type rampResult struct {
	Schema      string     `json:"schema"`
	SLOP99US    int64      `json:"slo_p99_us"`
	Workers     int        `json:"workers"`
	Shards      int        `json:"shards"`
	StepMS      int64      `json:"step_ms"`
	Steps       []rampStep `json:"steps"`
	PeakClients int        `json:"peak_clients"` // largest client count inside SLO
	PeakRPS     float64    `json:"peak_rps"`     // its throughput: peak sustainable load
	SLOBreached bool       `json:"slo_breached"`
}

// rampStep is one rung of the ramp.
type rampStep struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Shed           int     `json:"shed"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50US          int64   `json:"p50_us"`
	P99US          int64   `json:"p99_us"`
	ShardRequests  []int64 `json:"shard_requests,omitempty"`
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "drive a running dswpd at this host:port instead of in-process engines")
		clients   = flag.Int("clients", 0, "closed-loop client goroutines (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 0, "in-process engine workers (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "in-process engine shards (0 = GOMAXPROCS, clamped to workers)")
		ramp      = flag.Bool("ramp", false, "ramp clients (1,2,4,...) on the warm path until the p99 SLO breaches")
		slo       = flag.Duration("slo", 50*time.Millisecond, "p99 latency SLO for -ramp")
		duration  = flag.Duration("duration", 3*time.Second, "measurement window per serving path")
		mixFlag   = flag.String("mix", "list-traversal,list-of-lists", "comma-separated workload mix")
		n         = flag.Int64("n", 32, "list-traversal length in the mix")
		outer     = flag.Int64("outer", 4, "list-of-lists outer length in the mix")
		inner     = flag.Int64("inner", 2, "list-of-lists inner length in the mix")
		mode      = flag.String("mode", "", "execution mode for requests: supervised (default), concurrent, sequential")
		kind      = flag.String("queue", "channel", "substrate for in-process engines: channel or ring")
		smoke     = flag.Bool("smoke", false, "with -addr: first exercise /healthz, /workloads, one /run per workload, and /metrics")
		quick     = flag.Bool("quick", false, "shorter window (-duration 500ms) for CI smoke")
		benchjson = flag.Bool("benchjson", false, "write machine-readable results (see -out)")
		out       = flag.String("out", "BENCH_PR5.json", "output path for -benchjson")
		jsonOut   = flag.Bool("json", false, "emit the full summary as one JSON object on stdout (progress moves to stderr)")
	)
	flag.Parse()
	if *jsonOut {
		human = os.Stderr
	}

	if *quick && *duration == 3*time.Second {
		*duration = 500 * time.Millisecond
	}
	if *clients <= 0 {
		*clients = runtime.GOMAXPROCS(0)
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	mix := buildMix(strings.Split(*mixFlag, ","), *n, *outer, *inner)
	if *addr != "" {
		if *ramp {
			fail(fmt.Errorf("-ramp is in-process only (it reads engine shard snapshots)"))
		}
		runHTTP(*addr, mix, *clients, *duration, *smoke, *jsonOut)
		return
	}
	if *smoke {
		fail(fmt.Errorf("-smoke requires -addr"))
	}

	qk, err := queue.ParseKind(*kind)
	if err != nil {
		fail(err)
	}
	if *ramp {
		opts := engine.Options{Workers: *workers, Shards: *shards, Queue: qk, QueueDepth: 512}
		rr := runRamp(opts, mix, *mode, *slo, *duration)
		if *jsonOut {
			emitJSON(rr)
		}
		return
	}
	res := &benchFile{
		Schema:     "dswp-bench-pr5/1",
		Quick:      *quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    *workers,
		Clients:    *clients,
		DurationMS: duration.Milliseconds(),
	}
	for _, r := range mix {
		name := r.Workload
		switch name {
		case "list-traversal":
			name = fmt.Sprintf("list-traversal[n=%d]", r.N)
		case "list-of-lists":
			name = fmt.Sprintf("list-of-lists[outer=%d,inner=%d]", r.Outer, r.Inner)
		}
		res.Mix = append(res.Mix, name)
	}
	fmt.Fprintf(human, "dswpload: GOMAXPROCS=%d workers=%d clients=%d duration=%s\ndswpload: mix %s\n\n",
		res.GOMAXPROCS, res.Workers, res.Clients, *duration, strings.Join(res.Mix, " "))

	// Each comparison holds everything but one mechanism constant:
	// cold vs cached run the mix with sequential execution, so the
	// measured delta is exactly the compile the cache amortizes; the
	// *-pipelined pair runs the default supervised pipeline, so the
	// delta is exactly the per-run state the warm pools reuse. An
	// explicit -mode collapses the table to cold/cached/warm in that
	// one mode.
	type pathSpec struct {
		name, mode string
		opts       engine.Options
	}
	paths := []pathSpec{
		{"cold", "sequential", engine.Options{DisableCache: true, DisablePool: true}},
		{"cached", "sequential", engine.Options{DisablePool: true}},
		{"cached-pipelined", "supervised", engine.Options{DisablePool: true}},
		{"warm-pipelined", "supervised", engine.Options{}},
	}
	coldName, cachedName, warmBase, warmName := "cold", "cached", "cached-pipelined", "warm-pipelined"
	if *mode != "" {
		paths = []pathSpec{
			{"cold", *mode, engine.Options{DisableCache: true, DisablePool: true}},
			{"cached", *mode, engine.Options{DisablePool: true}},
			{"warm", *mode, engine.Options{}},
		}
		warmBase, warmName = "cached", "warm"
	}
	byName := map[string]pathResult{}
	for _, p := range paths {
		p.opts.Workers = *workers
		p.opts.Shards = *shards
		p.opts.QueueDepth = 2 * *clients // closed loop: never shed
		p.opts.Queue = qk
		pr := runPath(p.name, p.mode, p.opts, mix, *clients, *duration)
		res.Paths = append(res.Paths, pr)
		byName[p.name] = pr
	}
	if cold := byName[coldName].ThroughputRPS; cold > 0 {
		res.CachedVsCold = byName[cachedName].ThroughputRPS / cold
	}
	if cached := byName[warmBase].ThroughputRPS; cached > 0 {
		res.WarmVsCached = byName[warmName].ThroughputRPS / cached
	}

	fmt.Fprintf(human, "\nheadlines:\n")
	fmt.Fprintf(human, "  cached_vs_cold_throughput: %.1fx (compile amortization; acceptance: >= 10)\n", res.CachedVsCold)
	fmt.Fprintf(human, "  warm_vs_cached_throughput: %.2fx (instance reuse on the pipelined path)\n", res.WarmVsCached)

	if *benchjson {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(human, "\nwrote %s\n", *out)
	}
	if *jsonOut {
		emitJSON(res)
	}
}

// human receives progress and tables; it moves to stderr under -json so
// stdout carries exactly one machine-readable object.
var human io.Writer = os.Stdout

// emitJSON writes the machine-readable summary to stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

// buildMix expands workload names into concrete requests.
func buildMix(names []string, n, outer, inner int64) []engine.Request {
	var mix []engine.Request
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		req := engine.Request{Workload: name}
		switch name {
		case "list-traversal":
			req.N = n
		case "list-of-lists":
			req.Outer, req.Inner = outer, inner
		}
		mix = append(mix, req)
	}
	if len(mix) == 0 {
		fail(fmt.Errorf("empty workload mix"))
	}
	return mix
}

// runPath measures one serving path: a dedicated engine, a priming pass
// that records the per-workload reference digests (and, for cached/warm,
// warms the reuse machinery the path is meant to measure), then the
// timed closed loop.
func runPath(name, mode string, opts engine.Options, mix []engine.Request, clients int, dur time.Duration) pathResult {
	e := engine.New(opts)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("%s: shutdown: %w", name, err))
		}
	}()

	// Reference digests: the engine's sequential mode runs the original
	// loop on the interpreter — the acceptance oracle.
	want := make([]string, len(mix))
	for i, req := range mix {
		req.Mode = "sequential"
		resp, err := e.Run(context.Background(), req)
		if err != nil {
			fail(fmt.Errorf("%s: reference %s: %w", name, req.Workload, err))
		}
		want[i] = resp.Digest
	}
	// Prime: one pass per mix entry so cached/warm measure steady state,
	// not their own fill. (The cold engine has nothing to prime.)
	timed := make([]engine.Request, len(mix))
	for i, req := range mix {
		req.Mode = mode
		timed[i] = req
		if _, err := e.Run(context.Background(), req); err != nil {
			fail(fmt.Errorf("%s: prime %s: %w", name, req.Workload, err))
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []time.Duration
		nerr      int
		classLats = map[string][]time.Duration{}
		stop      = make(chan struct{})
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []time.Duration
			errs := 0
			myClass := map[string][]time.Duration{}
			for i := c; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, mine...)
					nerr += errs
					for k, v := range myClass {
						classLats[k] = append(classLats[k], v...)
					}
					mu.Unlock()
					return
				default:
				}
				j := i % len(timed)
				t0 := time.Now()
				resp, err := e.Run(context.Background(), timed[j])
				el := time.Since(t0)
				if err != nil || resp.Digest != want[j] {
					errs++
					class := "digest-mismatch"
					if err == nil {
						fmt.Fprintf(os.Stderr, "dswpload: %s: %s digest %s, want %s\n",
							name, timed[j].Workload, resp.Digest, want[j])
					} else {
						class = engine.ErrorClass(err)
						fmt.Fprintf(os.Stderr, "dswpload: %s: %s: %v\n", name, timed[j].Workload, err)
					}
					myClass[class] = append(myClass[class], el)
					continue
				}
				mine = append(mine, el)
			}
		}(c)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	s := e.Metrics().Snapshot()
	pr := summarize(name, lats, nerr, 0, elapsed, classLats)
	pr.Mode = mode
	pr.Compiles = s.Compiles
	pr.CacheHits = s.CacheHits
	pr.PoolHits = s.PoolHits
	pr.ShardRequests, pr.ShardImbalance = shardSpread(s.Shards)
	print1(pr)
	return pr
}

// shardSpread extracts per-shard request counts and the max/mean
// imbalance ratio from a snapshot's shard list.
func shardSpread(shards []engine.ShardSnapshot) ([]int64, float64) {
	if len(shards) == 0 {
		return nil, 0
	}
	counts := make([]int64, len(shards))
	for i, sh := range shards {
		counts[i] = sh.Requests
	}
	return counts, imbalance(counts)
}

// imbalance is max/mean over per-shard counts: 1.0 is perfectly even, 0
// means no traffic (or no shard data).
func imbalance(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(counts)))
}

// runRamp measures peak sustainable load on the warm serving path: one
// engine (cache and pools on), client count doubled 1→256, each rung a
// closed loop of stepDur, stopping at the first rung whose p99 exceeds
// the SLO. Per-rung shard counts come from snapshot deltas, so each
// rung's spread is attributed to that rung alone.
func runRamp(opts engine.Options, mix []engine.Request, mode string, slo, stepDur time.Duration) rampResult {
	e := engine.New(opts)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("ramp: shutdown: %w", err))
		}
	}()

	want := make([]string, len(mix))
	timed := make([]engine.Request, len(mix))
	for i, req := range mix {
		req.Mode = "sequential"
		resp, err := e.Run(context.Background(), req)
		if err != nil {
			fail(fmt.Errorf("ramp: reference %s: %w", req.Workload, err))
		}
		want[i] = resp.Digest
		req.Mode = mode
		timed[i] = req
		if _, err := e.Run(context.Background(), req); err != nil {
			fail(fmt.Errorf("ramp: prime %s: %w", req.Workload, err))
		}
	}

	rr := rampResult{
		Schema:   "dswp-load-ramp/1",
		SLOP99US: slo.Microseconds(),
		Workers:  opts.Workers,
		StepMS:   stepDur.Milliseconds(),
	}
	prevShards := e.Metrics().Snapshot().Shards
	rr.Shards = len(prevShards)
	fmt.Fprintf(human, "ramp: workers=%d shards=%d slo p99<=%s step=%s\n",
		rr.Workers, rr.Shards, slo, stepDur)
	for c := 1; c <= 256; c *= 2 {
		var (
			wg         sync.WaitGroup
			mu         sync.Mutex
			lats       []time.Duration
			errs, shed int
			stop       = make(chan struct{})
		)
		start := time.Now()
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var mine []time.Duration
				myErrs, myShed := 0, 0
				for i := g; ; i++ {
					select {
					case <-stop:
						mu.Lock()
						lats = append(lats, mine...)
						errs += myErrs
						shed += myShed
						mu.Unlock()
						return
					default:
					}
					j := i % len(timed)
					t0 := time.Now()
					resp, err := e.Run(context.Background(), timed[j])
					el := time.Since(t0)
					switch {
					case err != nil && engine.ErrorClass(err) == "shed":
						myShed++ // overload shedding is the engine holding its SLO, not a failure
					case err != nil || resp.Digest != want[j]:
						myErrs++
					default:
						mine = append(mine, el)
					}
				}
			}(g)
		}
		time.Sleep(stepDur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)

		step := rampStep{Clients: c, Requests: len(lats), Errors: errs, Shed: shed}
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			step.ThroughputRPS = float64(len(lats)) / elapsed.Seconds()
			step.P50US = lats[len(lats)/2].Microseconds()
			step.P99US = lats[quantIdx(len(lats), 99, 100)].Microseconds()
		}
		cur := e.Metrics().Snapshot().Shards
		counts := make([]int64, len(cur))
		for i := range cur {
			counts[i] = cur[i].Requests
			if i < len(prevShards) {
				counts[i] -= prevShards[i].Requests
			}
		}
		prevShards = cur
		step.ShardRequests = counts
		step.ShardImbalance = imbalance(counts)
		rr.Steps = append(rr.Steps, step)
		fmt.Fprintf(human, "  clients %3d: %9.0f req/s  p50 %6dus  p99 %7dus  errs %d shed %d  imbalance %.2f\n",
			c, step.ThroughputRPS, step.P50US, step.P99US, errs, shed, step.ShardImbalance)
		if step.P99US > rr.SLOP99US || len(lats) == 0 {
			rr.SLOBreached = true
			break
		}
		if step.ThroughputRPS > rr.PeakRPS {
			rr.PeakRPS, rr.PeakClients = step.ThroughputRPS, c
		}
	}
	fmt.Fprintf(human, "ramp: peak sustainable %0.f req/s at %d clients (slo_breached=%v)\n",
		rr.PeakRPS, rr.PeakClients, rr.SLOBreached)
	return rr
}

// runHTTP drives POST /run on a live dswpd: same closed loop, with
// cross-request digest consistency as the correctness check (the
// generator has no in-process reference to compare against).
func runHTTP(addr string, mix []engine.Request, clients int, dur time.Duration, smoke, jsonOut bool) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	base := strings.TrimRight(addr, "/")
	client := &http.Client{Timeout: 60 * time.Second}
	if smoke {
		smokeCheck(client, base)
	}

	// One canary request per mix entry pins the expected digest.
	want := make([]string, len(mix))
	for i, req := range mix {
		resp, status, class, err := post(client, base, req)
		if err != nil || status != http.StatusOK {
			fail(fmt.Errorf("canary %s: status=%d class=%s err=%v", req.Workload, status, class, err))
		}
		want[i] = resp.Digest
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		lats        []time.Duration
		nerr, nshed int
		byClass     = map[string]int{}
		classLats   = map[string][]time.Duration{}
		shardCounts = map[int]int64{}
		stop        = make(chan struct{})
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []time.Duration
			errs, shed := 0, 0
			classes := map[string]int{}
			myClass := map[string][]time.Duration{}
			myShards := map[int]int64{}
			for i := c; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, mine...)
					nerr += errs
					nshed += shed
					for k, v := range classes {
						byClass[k] += v
					}
					for k, v := range myClass {
						classLats[k] = append(classLats[k], v...)
					}
					for k, v := range myShards {
						shardCounts[k] += v
					}
					mu.Unlock()
					return
				default:
				}
				j := i % len(mix)
				t0 := time.Now()
				resp, status, class, err := post(client, base, mix[j])
				el := time.Since(t0)
				switch {
				case err != nil:
					errs++
					classes["transport"]++
					myClass["transport"] = append(myClass["transport"], el)
					fmt.Fprintf(os.Stderr, "dswpload: http: %s: %v\n", mix[j].Workload, err)
				case status == http.StatusTooManyRequests:
					shed++ // load shedding is the server working as designed
					classes[class]++
					myClass[class] = append(myClass[class], el)
				case status != http.StatusOK:
					errs++
					classes[class]++
					myClass[class] = append(myClass[class], el)
					fmt.Fprintf(os.Stderr, "dswpload: http: %s: status %d class %s\n",
						mix[j].Workload, status, class)
				case resp.Digest != want[j]:
					errs++
					classes["digest-mismatch"]++
					myClass["digest-mismatch"] = append(myClass["digest-mismatch"], el)
					fmt.Fprintf(os.Stderr, "dswpload: http: %s digest %s, want %s\n",
						mix[j].Workload, resp.Digest, want[j])
				default:
					myShards[resp.Shard]++
					mine = append(mine, el)
				}
			}
		}(c)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	pr := summarize("http", lats, nerr, nshed, elapsed, classLats)
	if len(byClass) > 0 {
		pr.ErrorsByClass = byClass
	}
	if len(shardCounts) > 0 {
		maxID := 0
		for id := range shardCounts {
			if id > maxID {
				maxID = id
			}
		}
		counts := make([]int64, maxID+1)
		for id, n := range shardCounts {
			counts[id] = n
		}
		pr.ShardRequests = counts
		pr.ShardImbalance = imbalance(counts)
	}
	print1(pr)
	if jsonOut {
		emitJSON(struct {
			Schema     string     `json:"schema"`
			Addr       string     `json:"addr"`
			Clients    int        `json:"clients"`
			DurationMS int64      `json:"duration_ms"`
			Result     pathResult `json:"result"`
		}{"dswp-load-http/1", base, clients, dur.Milliseconds(), pr})
	}
	if nerr > 0 {
		fail(fmt.Errorf("%d requests failed", nerr))
	}
	if len(lats) == 0 {
		fail(fmt.Errorf("no request completed"))
	}
}

// smokeCheck exercises every endpoint once: liveness, the workload
// catalog, one POST /run per servable workload (each response must
// carry a digest), and a /metrics scrape that must account for those
// runs. Any failure exits nonzero — this is the CI server-smoke gate.
func smokeCheck(client *http.Client, base string) {
	hr, err := client.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /healthz: status=%v err=%v", status(hr), err))
	}
	hr.Body.Close()

	hr, err = client.Get(base + "/workloads")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /workloads: status=%v err=%v", status(hr), err))
	}
	var cat struct {
		Workloads []engine.WorkloadInfo `json:"workloads"`
	}
	err = json.NewDecoder(hr.Body).Decode(&cat)
	hr.Body.Close()
	if err != nil || len(cat.Workloads) == 0 {
		fail(fmt.Errorf("smoke /workloads: %d entries, err=%v", len(cat.Workloads), err))
	}
	for _, wi := range cat.Workloads {
		resp, st, class, err := post(client, base, engine.Request{Workload: wi.Name})
		if err != nil || st != http.StatusOK || resp.Digest == "" {
			fail(fmt.Errorf("smoke /run %s: status=%d class=%s err=%v", wi.Name, st, class, err))
		}
		fmt.Fprintf(human, "  smoke /run %-24s %s cache=%s pipelined=%v\n",
			wi.Name, resp.Digest, resp.Cache, resp.Pipelined)
	}
	// After the per-workload runs, /workloads must carry compile info
	// (checkpointable or not) for everything just served.
	hr, err = client.Get(base + "/workloads")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /workloads (2): status=%v err=%v", status(hr), err))
	}
	err = json.NewDecoder(hr.Body).Decode(&cat)
	hr.Body.Close()
	if err != nil {
		fail(fmt.Errorf("smoke /workloads (2): %v", err))
	}
	for _, wi := range cat.Workloads {
		if !wi.Compiled || wi.Pipelined == nil || wi.Checkpointable == nil {
			fail(fmt.Errorf("smoke /workloads: %s served but compile info missing: %+v", wi.Name, wi))
		}
		if *wi.Pipelined && !*wi.Checkpointable {
			fmt.Fprintf(human, "  smoke note: %s pipelined but NOT checkpointable\n", wi.Name)
		}
	}

	hr, err = client.Get(base + "/metrics")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /metrics: status=%v err=%v", status(hr), err))
	}
	var snap engine.EngineSnapshot
	err = json.NewDecoder(hr.Body).Decode(&snap)
	hr.Body.Close()
	if err != nil || snap.Completed < int64(len(cat.Workloads)) {
		fail(fmt.Errorf("smoke /metrics: completed=%d want >= %d, err=%v",
			snap.Completed, len(cat.Workloads), err))
	}
	if snap.PoolQuarantined > 0 {
		fmt.Fprintf(human, "  smoke note: %d instance(s) quarantined\n", snap.PoolQuarantined)
	}
	fmt.Fprintf(human, "  smoke /metrics: %d completed, %d compiles, p50 total %dus\n",
		snap.Completed, snap.Compiles, snap.LatencyTotalUS.P50)

	smokeTelemetry(client, base)
}

// smokeTelemetry exercises the PR7 observability surface: the Prometheus
// representation of /metrics must negotiate correctly and lint clean,
// /run must stamp X-Request-ID, and the /debug endpoints must answer.
func smokeTelemetry(client *http.Client, base string) {
	// Prometheus negotiation: Accept: text/plain flips the representation.
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		fail(err)
	}
	req.Header.Set("Accept", "text/plain")
	hr, err := client.Do(req)
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /metrics (prom): status=%v err=%v", status(hr), err))
	}
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fail(fmt.Errorf("smoke /metrics (prom): Content-Type %q, want text/plain", ct))
	}
	promText, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		fail(fmt.Errorf("smoke /metrics (prom): %v", err))
	}
	if problems := telemetry.LintProm(string(promText)); len(problems) > 0 {
		fail(fmt.Errorf("smoke /metrics (prom): lint: %s", strings.Join(problems, "; ")))
	}
	if !strings.Contains(string(promText), "dswp_requests_total") {
		fail(fmt.Errorf("smoke /metrics (prom): dswp_requests_total missing"))
	}

	// /run responses must carry the request ID the trace was minted under.
	body, _ := json.Marshal(engine.Request{Workload: "list-traversal", N: 8})
	hr, err = client.Post(base+"/run", "application/json", bytes.NewReader(body))
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /run (traced): status=%v err=%v", status(hr), err))
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	reqID := hr.Header.Get("X-Request-ID")
	if reqID == "" {
		fail(fmt.Errorf("smoke /run (traced): no X-Request-ID header"))
	}

	hr, err = client.Get(base + "/debug/requests")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /debug/requests: status=%v err=%v", status(hr), err))
	}
	var dbg struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Started int64 `json:"started"`
		} `json:"stats"`
	}
	err = json.NewDecoder(hr.Body).Decode(&dbg)
	hr.Body.Close()
	if err != nil || !dbg.Enabled || dbg.Stats.Started == 0 {
		fail(fmt.Errorf("smoke /debug/requests: enabled=%v started=%d err=%v",
			dbg.Enabled, dbg.Stats.Started, err))
	}

	hr, err = client.Get(base + "/debug/vars?series=0")
	if err != nil || hr.StatusCode != http.StatusOK {
		fail(fmt.Errorf("smoke /debug/vars: status=%v err=%v", status(hr), err))
	}
	var vars struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Window        struct {
			Seconds int `json:"seconds"`
		} `json:"window"`
	}
	err = json.NewDecoder(hr.Body).Decode(&vars)
	hr.Body.Close()
	if err != nil || vars.Window.Seconds == 0 {
		fail(fmt.Errorf("smoke /debug/vars: window_seconds=%d err=%v", vars.Window.Seconds, err))
	}
	fmt.Fprintf(human, "  smoke telemetry: prom lints clean (%d bytes), request %s traced, window %ds\n",
		len(promText), reqID, vars.Window.Seconds)
}

func status(hr *http.Response) int {
	if hr == nil {
		return 0
	}
	return hr.StatusCode
}

// post issues one /run. On non-200 it decodes the server's typed error
// body and returns its class ("deadlock", "stage-panic", "shed", ...).
func post(client *http.Client, base string, req engine.Request) (*engine.Response, int, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, "", err
	}
	hr, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Class string `json:"class"`
		}
		class := "unknown"
		if json.NewDecoder(hr.Body).Decode(&eb) == nil && eb.Class != "" {
			class = eb.Class
		}
		return nil, hr.StatusCode, class, nil
	}
	var resp engine.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, hr.StatusCode, "", err
	}
	return &resp, hr.StatusCode, "", nil
}

func summarize(name string, lats []time.Duration, nerr, nshed int, elapsed time.Duration,
	classLats map[string][]time.Duration) pathResult {
	pr := pathResult{Path: name, Requests: len(lats), Errors: nerr, Shed: nshed}
	for class, cl := range classLats {
		if len(cl) == 0 {
			continue
		}
		sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
		var sum time.Duration
		for _, l := range cl {
			sum += l
		}
		if pr.LatencyByClass == nil {
			pr.LatencyByClass = map[string]classLatency{}
		}
		pr.LatencyByClass[class] = classLatency{
			Count:  len(cl),
			P50US:  cl[len(cl)/2].Microseconds(),
			P99US:  cl[quantIdx(len(cl), 99, 100)].Microseconds(),
			MeanUS: (sum / time.Duration(len(cl))).Microseconds(),
		}
	}
	if len(lats) == 0 {
		return pr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	pr.ThroughputRPS = float64(len(lats)) / elapsed.Seconds()
	pr.P50US = lats[len(lats)/2].Microseconds()
	pr.P99US = lats[quantIdx(len(lats), 99, 100)].Microseconds()
	pr.P999US = lats[quantIdx(len(lats), 999, 1000)].Microseconds()
	pr.MeanUS = (sum / time.Duration(len(lats))).Microseconds()
	return pr
}

// quantIdx returns the index of the num/den quantile in a sorted sample
// of n elements, clamped into range for tiny samples.
func quantIdx(n, num, den int) int {
	i := n * num / den
	if i >= n {
		i = n - 1
	}
	return i
}

func print1(pr pathResult) {
	fmt.Fprintf(human, "  %-7s %7d reqs  %9.0f req/s  p50 %6dus  p99 %7dus  p99.9 %7dus  mean %6dus  errs %d shed %d",
		pr.Path, pr.Requests, pr.ThroughputRPS, pr.P50US, pr.P99US, pr.P999US, pr.MeanUS, pr.Errors, pr.Shed)
	if pr.Compiles > 0 || pr.CacheHits > 0 {
		fmt.Fprintf(human, "  [compiles %d, cache hits %d, pool hits %d]", pr.Compiles, pr.CacheHits, pr.PoolHits)
	}
	if len(pr.ShardRequests) > 1 {
		fmt.Fprintf(human, "  [shards %v imbalance %.2f]", pr.ShardRequests, pr.ShardImbalance)
	}
	if len(pr.ErrorsByClass) > 0 {
		classes := make([]string, 0, len(pr.ErrorsByClass))
		for k := range pr.ErrorsByClass {
			classes = append(classes, k)
		}
		sort.Strings(classes)
		fmt.Fprintf(human, "  [errors:")
		for _, k := range classes {
			fmt.Fprintf(human, " %s=%d", k, pr.ErrorsByClass[k])
		}
		fmt.Fprintf(human, "]")
	}
	for _, k := range sortedClassKeys(pr.LatencyByClass) {
		cl := pr.LatencyByClass[k]
		fmt.Fprintf(human, "\n          %-18s n=%-6d p50 %6dus  p99 %7dus  mean %6dus",
			k, cl.Count, cl.P50US, cl.P99US, cl.MeanUS)
	}
	fmt.Fprintln(human)
}

func sortedClassKeys(m map[string]classLatency) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dswpload:", err)
	os.Exit(1)
}
