package main

// The -psjson tier: wall-clock for PS-DSWP parallel-stage replication
// (BENCH_PR10.json). The subject is hashred — a heavy per-element hash
// chain feeding a small XOR reduction — partitioned by the replication-
// directed search into induction | hash chain | reduction, so the middle
// stage holds nearly all the work. The sweep measures the same pipeline
// at replication width 1 (plain 3-stage DSWP), 2, and 4, across a
// GOMAXPROCS ladder and both queue substrates:
//
//   - at P=1 the widths should tie (replicas timeslice one core and the
//     fan-out adds queue traffic) — replication buys nothing without
//     real cores, and the file records num_cpu for exactly that reason;
//   - at P>=4 width 4 should pull ahead of width 1, because the
//     replicated stage is the pipeline's bottleneck by construction and
//     W replicas divide its service time.
//
// The headline ratio is width-4-vs-width-1 at the top P on ring queues.
// CI runs the quick variant on multi-core runners and uploads the file;
// EXPERIMENTS.md documents how to read it.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dswp/internal/core"
	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/psdswp"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
	"dswp/internal/workloads"
)

// psFile is the BENCH_PR10.json shape.
type psFile struct {
	Schema          string `json:"schema"`
	Quick           bool   `json:"quick"`
	NumCPU          int    `json:"num_cpu"`
	StartGOMAXPROCS int    `json:"start_gomaxprocs"`
	Procs           []int  `json:"procs"`
	Widths          []int  `json:"widths"`

	Workload     string  `json:"workload"`
	StageWeights []int64 `json:"stage_weights"`
	PlannedWidth int     `json:"planned_width"`

	// SequentialNsPerRun is the single-threaded interpreter baseline.
	SequentialNsPerRun float64 `json:"sequential_ns_per_run"`
	// Points is the sweep: wall-clock per (P, width, kind).
	Points []psPoint `json:"points"`

	// ReplicationScalingTopP is the headline: width-4 over width-1
	// wall-clock at the top P on ring queues (>1 means replication won).
	ReplicationScalingTopP float64 `json:"replication_scaling_top_p"`
}

type psPoint struct {
	Procs        int     `json:"procs"`
	Width        int     `json:"width"`
	Kind         string  `json:"kind"`
	Threads      int     `json:"threads"`
	NsPerRun     float64 `json:"ns_per_run"`
	VsWidth1     float64 `json:"vs_width1"`
	VsSequential float64 `json:"vs_sequential"`
}

func runPSBench(quick bool, out string) {
	dur := 300 * time.Millisecond
	procs := []int{1, 2, 4, 8}
	prog := workloads.HashRedSized(60000, 10)
	if quick {
		dur = 80 * time.Millisecond
		procs = []int{1, 2, 4}
		prog = workloads.HashRedSized(20000, 10)
	}
	widths := []int{1, 2, 4}
	startP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(startP)

	res := &psFile{
		Schema: "dswp-bench-pr10/1", Quick: quick,
		NumCPU: runtime.NumCPU(), StartGOMAXPROCS: startP,
		Procs: procs, Widths: widths, Workload: prog.Name,
	}
	fmt.Printf("dswpbench -psjson: NumCPU=%d procs=%v widths=%v quick=%v\n",
		res.NumCPU, procs, widths, quick)
	if res.NumCPU < 4 {
		fmt.Printf("dswpbench: NOTE: %d CPU(s) — replicas timeslice one core; expect flat width curves\n", res.NumCPU)
	}

	prof, err := profile.Collect(prog.F, prog.Options())
	if err != nil {
		fail(err)
	}
	a, err := core.Analyze(prog.F, prog.LoopHeader, prof, core.Config{
		NumThreads: 3, SkipProfitability: true, PackFlows: true,
	})
	if err != nil {
		fail(err)
	}
	part, tr, rep, err := psdswp.SearchPartition(a, 3)
	if err != nil {
		fail(fmt.Errorf("directed partition: %w", err))
	}
	res.StageWeights = part.StageWeights()
	res.PlannedWidth = rep.Width
	fmt.Printf("  directed partition: stage weights %v, planner chose width %d\n%s",
		res.StageWeights, rep.Width, rep)

	// One pipeline per width, compiled once; width 1 is the unreplicated
	// 3-stage pipeline the others are measured against.
	pipelines := map[int]*core.Transformed{1: tr}
	for _, w := range widths {
		if w == 1 {
			continue
		}
		r, err := psdswp.Replicate(tr, rep.Stage, w)
		if err != nil {
			fail(fmt.Errorf("replicate width %d: %w", w, err))
		}
		pipelines[w] = r.Tr
	}

	res.SequentialNsPerRun = measure(dur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := interp.Run(prog.F, interp.Options{Mem: prog.Mem, Regs: prog.Regs}); err != nil {
				fail(fmt.Errorf("sequential: %w", err))
			}
		}
	})
	fmt.Printf("  sequential %12.0f ns/run\n", res.SequentialNsPerRun)

	fmt.Println("\nreplicated pipeline wall-clock across GOMAXPROCS:")
	width1 := map[string]float64{} // kind|P -> ns
	topP := procs[len(procs)-1]
	for _, P := range procs {
		runtime.GOMAXPROCS(P)
		for _, w := range widths {
			ptr := pipelines[w]
			for _, kind := range []queue.Kind{queue.KindChannel, queue.KindRing} {
				ns := measure(dur, func(n int) {
					for i := 0; i < n; i++ {
						if _, err := rt.Run(ptr.Threads, rt.Options{
							Mem: prog.Mem, Regs: prog.Regs, Queue: kind,
						}); err != nil {
							fail(fmt.Errorf("P=%d w=%d %s: %w", P, w, kind, err))
						}
					}
				})
				key := fmt.Sprintf("%s|%d", kind, P)
				if w == 1 {
					width1[key] = ns
				}
				pt := psPoint{
					Procs: P, Width: w, Kind: kind.String(),
					Threads: len(ptr.Threads), NsPerRun: ns,
					VsSequential: res.SequentialNsPerRun / ns,
				}
				if base := width1[key]; base > 0 {
					pt.VsWidth1 = base / ns
				}
				res.Points = append(res.Points, pt)
				fmt.Printf("  P=%d w=%d %-7s threads=%d  %12.0f ns/run  %5.2fx vs w1  %5.2fx vs seq\n",
					P, w, kind, pt.Threads, ns, pt.VsWidth1, pt.VsSequential)
				if P == topP && w == widths[len(widths)-1] && kind == queue.KindRing {
					res.ReplicationScalingTopP = pt.VsWidth1
				}
			}
		}
	}
	runtime.GOMAXPROCS(startP)

	fmt.Printf("\nheadline:\n  replication_scaling_top_p: %.2fx (width %d vs width 1 at P=%d, ring)\n",
		res.ReplicationScalingTopP, widths[len(widths)-1], topP)

	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}
