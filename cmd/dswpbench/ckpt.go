package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dswp/internal/ckptstore"
	"dswp/internal/core"
	"dswp/internal/profile"
	"dswp/internal/supervisor"
	"dswp/internal/workloads"
)

// ckptFile is the BENCH_PR6.json shape: the cost of checkpoint commits on
// a supervised pipelined run, swept over commit period and durability
// tier. The baseline disables checkpointing entirely (RegOwner withheld,
// so the runtime never arms the iteration barrier); "none" pays the
// in-memory latch only; "mem" adds the binary codec round-trip; "file"
// adds temp-file + fsync + atomic rename per commit.
type ckptFile struct {
	Schema     string `json:"schema"`
	Quick      bool   `json:"quick"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Workload and Iters describe the measured loop (one supervised run =
	// Iters outer iterations).
	Workload string `json:"workload"`
	Iters    int64  `json:"iters"`
	// BaselineNsPerRun is a supervised run with checkpointing disabled.
	BaselineNsPerRun float64   `json:"baseline_ns_per_run"`
	Runs             []ckptRun `json:"runs"`
}

type ckptRun struct {
	// Store is the durability tier: "none" (in-memory latch only), "mem"
	// (latch + codec into a MemStore), "file" (latch + codec + fsync +
	// atomic rename into a FileStore).
	Store string `json:"store"`
	// Every is the commit period in outer-loop iterations.
	Every int64 `json:"every"`
	// CommitsPerRun is the observed checkpoint count of one run.
	CommitsPerRun int64 `json:"commits_per_run"`
	// NsPerRun is one full supervised run; OverheadPct is its cost over
	// the no-checkpoint baseline.
	NsPerRun    float64 `json:"ns_per_run"`
	OverheadPct float64 `json:"overhead_pct"`
}

// measureRuns is measure() for coarse units: it grows the repeat count
// from 1 (not 1024 — a single file-store run can cost milliseconds) until
// wall time reaches minDur, then reports ns per run.
func measureRuns(minDur time.Duration, run func()) float64 {
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			run()
		}
		el := time.Since(start)
		if el >= minDur {
			return float64(el.Nanoseconds()) / float64(n)
		}
		scale := 16.0
		if el > 0 {
			scale = 1.5 * float64(minDur) / float64(el)
			if scale > 16 {
				scale = 16
			}
			if scale < 1.2 {
				scale = 1.2
			}
		}
		n = int(float64(n)*scale) + 1
	}
}

// runCkptBench measures checkpoint-commit overhead and writes out (the
// satellite benchmark behind EXPERIMENTS.md's CheckpointEvery guidance).
func runCkptBench(quick bool, out string) {
	minDur := 300 * time.Millisecond
	const iters = 512
	if quick {
		minDur = 60 * time.Millisecond
	}

	p := workloads.ListTraversal(iters)
	prof, err := profile.Collect(p.F, p.Options())
	if err != nil {
		fail(err)
	}
	tr, err := core.Apply(p.F, p.LoopHeader, prof, core.Config{
		NumThreads: 2, SkipProfitability: true,
	})
	if err != nil {
		fail(err)
	}
	pipe := supervisor.Pipeline{
		Threads: tr.Threads, Original: p.F, LoopHeader: p.LoopHeader,
		RegOwner: tr.RegOwner, Mem: p.Mem, Regs: p.Regs,
	}
	// Withholding RegOwner disables aligned checkpointing entirely: the
	// runtime never arms the iteration barrier, so this run prices the
	// bare supervised pipeline.
	pipeOff := pipe
	pipeOff.RegOwner = nil

	res := &ckptFile{
		Schema:     "dswp-bench-pr6/1",
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   p.Name,
		Iters:      iters,
	}

	supRun := func(pipe supervisor.Pipeline, pol supervisor.Policy) *supervisor.Report {
		_, rep, err := supervisor.Run(context.Background(), pipe, pol)
		if err != nil {
			fail(err)
		}
		return rep
	}

	fmt.Printf("checkpoint-commit overhead (%s, %d iterations per run):\n", p.Name, iters)
	res.BaselineNsPerRun = measureRuns(minDur, func() { supRun(pipeOff, supervisor.Policy{}) })
	fmt.Printf("  baseline (checkpointing off)      %12.0f ns/run\n", res.BaselineNsPerRun)

	for _, store := range []string{"none", "mem", "file"} {
		for _, every := range []int64{1, 8, 64} {
			pol := supervisor.Policy{CheckpointEvery: every}
			var dir string
			switch store {
			case "mem":
				pol.Store = ckptstore.NewMem()
			case "file":
				dir, err = os.MkdirTemp("", "dswpbench-ckpt-*")
				if err != nil {
					fail(err)
				}
				fs, err := ckptstore.OpenFile(dir)
				if err != nil {
					fail(err)
				}
				pol.Store = fs
			}
			if pol.Store != nil {
				pol.StoreKey = "bench"
			}
			probe := supRun(pipe, pol)
			ns := measureRuns(minDur, func() { supRun(pipe, pol) })
			if pol.Store != nil {
				pol.Store.Close()
			}
			if dir != "" {
				os.RemoveAll(dir)
			}
			overhead := (ns/res.BaselineNsPerRun - 1) * 100
			res.Runs = append(res.Runs, ckptRun{
				Store: store, Every: every, CommitsPerRun: probe.Checkpoints,
				NsPerRun: ns, OverheadPct: overhead,
			})
			fmt.Printf("  store=%-4s every=%-3d (%3d commits) %12.0f ns/run  %+7.1f%%\n",
				store, every, probe.Checkpoints, ns, overhead)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}
