// Command dswpbench measures the PR 4 performance surface — the queue
// substrate microbenchmarks, the end-to-end pipeline reruns under each
// substrate, and the metrics-padding contention probe — and reports the
// headline numbers the repo's EXPERIMENTS.md pins.
//
//	dswpbench            # human-readable summary
//	dswpbench -benchjson # also write BENCH_PR4.json (see -out)
//	dswpbench -ckptjson  # checkpoint-commit overhead sweep (BENCH_PR6.json)
//	dswpbench -obsjson   # request-tracing overhead sweep (BENCH_PR7.json)
//	dswpbench -mcjson    # multi-core GOMAXPROCS sweep (BENCH_PR9.json)
//	dswpbench -quick     # shorter measurement windows (CI smoke)
//
// The JSON schema is documented in EXPERIMENTS.md ("BENCH_PR4.json
// format"). All timing is wall-clock on whatever machine runs this; the
// file records GOMAXPROCS and CPU count so readers can judge the numbers
// (in particular: false-sharing and true-concurrency effects need >1 CPU).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dswp/internal/core"
	"dswp/internal/obs"
	"dswp/internal/profile"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
	"dswp/internal/workloads"
)

// benchFile is the BENCH_PR4.json shape. Field meanings:
//
//   - queue_micro: one entry per (kind, cap, batch); ns_per_value is the
//     produce+consume cost of moving one int64 through the queue with a
//     concurrent producer goroutine; values_per_sec = 1e9/ns_per_value.
//   - ring_speedup_cap32: channel ns / ring ns at cap 32, batch 1 — the
//     acceptance headline (>= 2.0).
//   - e2e: one entry per (workload, kind, pack); ns_per_run is one full
//     pipeline execution under the goroutine runtime.
//   - ring_speedup_geomean: geomean over workloads of channel/ring
//     (pack off) end-to-end speedup.
//   - pack_speedup_geomean: geomean over workloads of ring-unpacked /
//     ring-packed end-to-end speedup (compiler flow packing's win).
//   - metrics_padding: ns per atomic increment when a producer/consumer
//     goroutine pair hammers one QueueMetrics, padded vs the pre-padding
//     layout. Deltas only appear with >1 CPU.
type benchFile struct {
	Schema           string        `json:"schema"`
	Quick            bool          `json:"quick"`
	GOMAXPROCS       int           `json:"gomaxprocs"`
	NumCPU           int           `json:"num_cpu"`
	QueueMicro       []queueMicro  `json:"queue_micro"`
	RingSpeedupCap32 float64       `json:"ring_speedup_cap32"`
	E2E              []e2eRun      `json:"e2e"`
	RingSpeedupGeo   float64       `json:"ring_speedup_geomean"`
	PackSpeedupGeo   float64       `json:"pack_speedup_geomean"`
	MetricsPadding   paddingResult `json:"metrics_padding"`
}

type queueMicro struct {
	Kind         string  `json:"kind"`
	Cap          int     `json:"cap"`
	Batch        int     `json:"batch"`
	NsPerValue   float64 `json:"ns_per_value"`
	ValuesPerSec float64 `json:"values_per_sec"`
}

type e2eRun struct {
	Workload string  `json:"workload"`
	Kind     string  `json:"kind"`
	Pack     bool    `json:"pack"`
	NsPerRun float64 `json:"ns_per_run"`
}

type paddingResult struct {
	PaddedNsPerOp   float64 `json:"padded_ns_per_op"`
	UnpaddedNsPerOp float64 `json:"unpadded_ns_per_op"`
}

func main() {
	benchjson := flag.Bool("benchjson", false, "write machine-readable results (see -out)")
	out := flag.String("out", "BENCH_PR4.json", "output path for -benchjson")
	quick := flag.Bool("quick", false, "shorter measurement windows (CI smoke; numbers are noisier)")
	ckptjson := flag.Bool("ckptjson", false, "measure checkpoint-commit overhead instead and write -ckptout")
	ckptout := flag.String("ckptout", "BENCH_PR6.json", "output path for -ckptjson")
	obsjson := flag.Bool("obsjson", false, "measure request-tracing overhead instead and write -obsout")
	obsout := flag.String("obsout", "BENCH_PR7.json", "output path for -obsjson")
	mcjson := flag.Bool("mcjson", false, "run the multi-core GOMAXPROCS sweep instead and write -mcout")
	mcout := flag.String("mcout", "BENCH_PR9.json", "output path for -mcjson")
	psjson := flag.Bool("psjson", false, "run the PS-DSWP replication sweep instead and write -psout")
	psout := flag.String("psout", "BENCH_PR10.json", "output path for -psjson")
	flag.Parse()

	if *ckptjson {
		runCkptBench(*quick, *ckptout)
		return
	}
	if *obsjson {
		runObsBench(*quick, *obsout)
		return
	}
	if *mcjson {
		runMCBench(*quick, *mcout)
		return
	}
	if *psjson {
		runPSBench(*quick, *psout)
		return
	}

	micro := 150 * time.Millisecond
	e2e := 400 * time.Millisecond
	if *quick {
		micro = 30 * time.Millisecond
		e2e = 80 * time.Millisecond
	}

	res := &benchFile{
		Schema:     "dswp-bench-pr4/1",
		Quick:      *quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	fmt.Printf("dswpbench: GOMAXPROCS=%d NumCPU=%d quick=%v\n\n", res.GOMAXPROCS, res.NumCPU, *quick)

	runQueueMicro(res, micro)
	runE2E(res, e2e)
	runPadding(res, micro)

	fmt.Printf("\nheadlines:\n")
	fmt.Printf("  ring_speedup_cap32:   %.2fx (acceptance: >= 2.0)\n", res.RingSpeedupCap32)
	fmt.Printf("  ring_speedup_geomean: %.2fx end-to-end (pack off)\n", res.RingSpeedupGeo)
	fmt.Printf("  pack_speedup_geomean: %.2fx end-to-end (ring, packed vs unpacked)\n", res.PackSpeedupGeo)

	if *benchjson {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

// measure calls run(n) with growing n until one call's wall time reaches
// minDur, then returns ns per unit of that final call.
func measure(minDur time.Duration, run func(n int)) float64 {
	n := 1 << 10
	for {
		start := time.Now()
		run(n)
		el := time.Since(start)
		if el >= minDur {
			return float64(el.Nanoseconds()) / float64(n)
		}
		scale := 16.0
		if el > 0 {
			scale = 1.5 * float64(minDur) / float64(el)
			if scale > 16 {
				scale = 16
			}
			if scale < 1.2 {
				scale = 1.2
			}
		}
		n = int(float64(n)*scale) + 1
	}
}

// moveValues streams n int64s through a fresh queue of the given kind:
// a producer goroutine feeds, the caller consumes, both preferring batched
// operations of size batch with the blocking single-value op as fallback.
func moveValues(kind queue.Kind, capacity, batch, n int) {
	q := queue.New(kind, capacity)
	done := make(chan struct{})
	go func() {
		if batch == 1 {
			for i := 0; i < n; i++ {
				q.Produce(int64(i), done)
			}
			return
		}
		buf := make([]int64, batch)
		for i := 0; i < n; {
			m := batch
			if n-i < m {
				m = n - i
			}
			vs := buf[:m]
			for j := range vs {
				vs[j] = int64(i + j)
			}
			sent := 0
			for sent < m {
				if k := q.TryProduceN(vs[sent:]); k > 0 {
					sent += k
				} else {
					q.Produce(vs[sent], done)
					sent++
				}
			}
			i += m
		}
	}()
	if batch == 1 {
		for i := 0; i < n; i++ {
			q.Consume(done)
		}
		return
	}
	buf := make([]int64, batch)
	for got := 0; got < n; {
		m := batch
		if n-got < m {
			m = n - got
		}
		if k := q.TryConsumeN(buf[:m]); k > 0 {
			got += k
		} else if _, ok := q.Consume(done); ok {
			got++
		}
	}
}

func runQueueMicro(res *benchFile, minDur time.Duration) {
	fmt.Println("queue microbenchmarks (ns per value, producer goroutine -> consumer):")
	var chanCap32, ringCap32 float64
	for _, kind := range []queue.Kind{queue.KindChannel, queue.KindRing} {
		for _, capacity := range []int{1, 8, 32, 256} {
			for _, batch := range []int{1, 8, 64} {
				if batch > capacity {
					continue // batches beyond capacity degenerate to the fallback path
				}
				ns := measure(minDur, func(n int) { moveValues(kind, capacity, batch, n) })
				res.QueueMicro = append(res.QueueMicro, queueMicro{
					Kind: kind.String(), Cap: capacity, Batch: batch,
					NsPerValue: ns, ValuesPerSec: 1e9 / ns,
				})
				fmt.Printf("  %-7s cap=%-3d batch=%-2d  %8.1f ns/value  %12.0f values/s\n",
					kind, capacity, batch, ns, 1e9/ns)
				if capacity == 32 && batch == 1 {
					if kind == queue.KindChannel {
						chanCap32 = ns
					} else {
						ringCap32 = ns
					}
				}
			}
		}
	}
	if ringCap32 > 0 {
		res.RingSpeedupCap32 = chanCap32 / ringCap32
	}
}

// e2eWorkloads are pipelines where flow packing actually fires (list-of-
// lists, notably, packs nothing and is deliberately absent).
var e2eWorkloads = []string{"181.mcf", "256.bzip2", "wc", "list-traversal"}

func buildWorkload(name string) *workloads.Program {
	if name == "list-traversal" {
		return workloads.ListTraversal(2000)
	}
	for _, wb := range workloads.Table1Suite() {
		if wb.Name == name {
			return wb.Build()
		}
	}
	fail(fmt.Errorf("unknown benchmark workload %q", name))
	return nil
}

func runE2E(res *benchFile, minDur time.Duration) {
	fmt.Println("\nend-to-end pipeline runs (goroutine runtime, ns per run):")
	perRun := map[string]float64{} // "workload/kind/pack"
	for _, name := range e2eWorkloads {
		p := buildWorkload(name)
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			fail(err)
		}
		for _, pack := range []bool{false, true} {
			tr, err := core.Apply(p.F, p.LoopHeader, prof, core.Config{
				NumThreads: 2, SkipProfitability: true, PackFlows: pack,
			})
			if err != nil {
				fail(fmt.Errorf("%s: %w", name, err))
			}
			for _, kind := range []queue.Kind{queue.KindChannel, queue.KindRing} {
				ns := measure(minDur, func(n int) {
					for i := 0; i < n; i++ {
						if _, err := rt.Run(tr.Threads, rt.Options{
							Mem: p.Mem, Regs: p.Regs, Queue: kind,
						}); err != nil {
							fail(fmt.Errorf("%s %s pack=%v: %w", name, kind, pack, err))
						}
					}
				})
				res.E2E = append(res.E2E, e2eRun{Workload: name, Kind: kind.String(), Pack: pack, NsPerRun: ns})
				perRun[fmt.Sprintf("%s/%s/%v", name, kind, pack)] = ns
				fmt.Printf("  %-14s %-7s pack=%-5v  %12.0f ns/run\n", name, kind, pack, ns)
			}
		}
	}
	var ringSp, packSp []float64
	for _, name := range e2eWorkloads {
		ringSp = append(ringSp, perRun[name+"/channel/false"]/perRun[name+"/ring/false"])
		packSp = append(packSp, perRun[name+"/ring/false"]/perRun[name+"/ring/true"])
	}
	res.RingSpeedupGeo = geomean(ringSp)
	res.PackSpeedupGeo = geomean(packSp)
}

// unpaddedQueueMetrics mirrors obs.QueueMetrics before cache-line padding:
// the producer- and consumer-written counters adjacent on one line.
type unpaddedQueueMetrics struct {
	Produces, Consumes int64
	rest               [10]int64
}

func runPadding(res *benchFile, minDur time.Duration) {
	hammer := func(produces, consumes *int64) func(n int) {
		return func(n int) {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < n/2; i++ {
					atomic.AddInt64(produces, 1)
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < n/2; i++ {
					atomic.AddInt64(consumes, 1)
				}
			}()
			wg.Wait()
		}
	}
	var padded obs.QueueMetrics
	var unpadded unpaddedQueueMetrics
	res.MetricsPadding.PaddedNsPerOp = measure(minDur, hammer(&padded.Produces, &padded.Consumes))
	res.MetricsPadding.UnpaddedNsPerOp = measure(minDur, hammer(&unpadded.Produces, &unpadded.Consumes))
	_ = unpadded.rest
	fmt.Printf("\nmetrics false-sharing probe (ns per atomic increment, producer+consumer pair):\n")
	fmt.Printf("  padded QueueMetrics:    %6.2f ns/op\n", res.MetricsPadding.PaddedNsPerOp)
	fmt.Printf("  unpadded (old layout):  %6.2f ns/op\n", res.MetricsPadding.UnpaddedNsPerOp)
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dswpbench:", err)
	os.Exit(1)
}
