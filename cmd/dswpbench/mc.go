package main

// The -mcjson tier: the repo's first multi-core measurements. Every
// earlier artifact (BENCH_PR4–PR7) was collected at GOMAXPROCS=1, which
// proves mechanism costs but not the paper's actual claim — that
// decoupling a loop into communicating stages buys wall-clock speedup on
// parallel hardware. This sweep sets GOMAXPROCS per point and measures:
//
//   - per-pipeline wall-clock at P ∈ {1,2,4,8} × {ring,channel} ×
//     {packed,unpacked}, against a sequential-interpreter baseline;
//   - stage pinning (runtime.LockOSThread) on vs off at the top P;
//   - batched-transfer sizing at 1 P vs >1 P (the batch sweet spot
//     shifts when producer and consumer genuinely overlap);
//   - cached-serving engine throughput with Workers=Shards=P and the
//     client count swept {P, 2P, 4P} per point, with per-shard
//     attribution.
//
// The file records num_cpu because the headline ratios only mean
// something with real cores: on a 1-CPU host extra Ps just timeslice,
// and the scaling curves are expected to be flat. CI runs this on
// multi-core runners; EXPERIMENTS.md documents how to read both.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dswp/internal/core"
	"dswp/internal/engine"
	"dswp/internal/interp"
	"dswp/internal/profile"
	"dswp/internal/queue"
	rt "dswp/internal/runtime"
	"dswp/internal/workloads"
)

// mcFile is the BENCH_PR9.json shape.
type mcFile struct {
	Schema          string `json:"schema"`
	Quick           bool   `json:"quick"`
	NumCPU          int    `json:"num_cpu"`
	StartGOMAXPROCS int    `json:"start_gomaxprocs"`
	Procs           []int  `json:"procs"`

	// Sequential is the single-threaded interpreter baseline per workload
	// (P-independent: one goroutine can't use more Ps).
	Sequential []mcSeq `json:"sequential_baseline"`
	// Pipeline is the DSWP runtime wall-clock per (workload, P, kind, pack);
	// vs_sequential > 1 means the pipeline beat the original loop.
	Pipeline []mcPipe `json:"pipeline"`
	// Pinning compares LockOSThread on/off at the top P (ring, packed).
	Pinning []mcPin `json:"stage_pinning"`
	// BatchSweep re-validates transfer batch sizing at 1 P vs multiple Ps.
	BatchSweep []mcBatch `json:"batch_sweep"`
	// Engine is the cached-serving closed loop per P (best client count
	// of {P, 2P, 4P} plus every rung measured).
	Engine []mcEngine `json:"engine_serving"`

	// EngineScaling4v1 is the acceptance headline: peak cached-serving
	// throughput at P=4 over P=1 (target >= 1.8 on >= 4 real cores).
	EngineScaling4v1 float64 `json:"engine_scaling_4v1"`
	// BestPipelineSpeedup is the best pipeline-vs-sequential ratio at
	// P=4 over ring configs, and the config that achieved it.
	BestPipelineSpeedup float64 `json:"best_pipeline_speedup_vs_sequential"`
	BestPipelineConfig  string  `json:"best_pipeline_config"`
}

type mcSeq struct {
	Workload string  `json:"workload"`
	NsPerRun float64 `json:"ns_per_run"`
}

type mcPipe struct {
	Workload     string  `json:"workload"`
	Procs        int     `json:"procs"`
	Kind         string  `json:"kind"`
	Pack         bool    `json:"pack"`
	NsPerRun     float64 `json:"ns_per_run"`
	VsSequential float64 `json:"vs_sequential"`
}

type mcPin struct {
	Workload string  `json:"workload"`
	Procs    int     `json:"procs"`
	Pinned   bool    `json:"pinned"`
	NsPerRun float64 `json:"ns_per_run"`
}

type mcBatch struct {
	Procs      int     `json:"procs"`
	Cap        int     `json:"cap"`
	Batch      int     `json:"batch"`
	NsPerValue float64 `json:"ns_per_value"`
}

type mcEngine struct {
	Procs          int     `json:"procs"`
	Workers        int     `json:"workers"`
	Shards         int     `json:"shards"`
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P99US          int64   `json:"p99_us"`
	Best           bool    `json:"best,omitempty"` // this rung is P's peak
	ShardRequests  []int64 `json:"shard_requests,omitempty"`
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
}

// mcWorkloads is the pipeline sweep set: the two Table 1 loops with the
// largest recurrence-free late stages plus the linked-list kernels.
var mcWorkloads = []string{"181.mcf", "wc", "list-traversal"}

func runMCBench(quick bool, out string) {
	pipeDur, microDur, stepDur := 250*time.Millisecond, 100*time.Millisecond, 400*time.Millisecond
	procs := []int{1, 2, 4, 8}
	if quick {
		pipeDur, microDur, stepDur = 60*time.Millisecond, 25*time.Millisecond, 150*time.Millisecond
		procs = []int{1, 2, 4}
	}
	startP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(startP)

	res := &mcFile{
		Schema:          "dswp-bench-pr9/1",
		Quick:           quick,
		NumCPU:          runtime.NumCPU(),
		StartGOMAXPROCS: startP,
		Procs:           procs,
	}
	fmt.Printf("dswpbench -mcjson: NumCPU=%d procs=%v quick=%v\n", res.NumCPU, procs, quick)
	if res.NumCPU < 4 {
		fmt.Printf("dswpbench: NOTE: %d CPU(s) — extra Ps timeslice one core; scaling curves will be flat\n", res.NumCPU)
	}

	// Compile each workload once (both packings); the sweep re-runs the
	// same translated pipeline under each P so the only variable is the
	// runtime's available parallelism.
	type compiled struct {
		prog  *workloads.Program
		packs map[bool]*core.Transformed
	}
	byName := map[string]*compiled{}
	for _, name := range mcWorkloads {
		p := buildWorkload(name)
		prof, err := profile.Collect(p.F, p.Options())
		if err != nil {
			fail(err)
		}
		c := &compiled{prog: p, packs: map[bool]*core.Transformed{}}
		for _, pack := range []bool{false, true} {
			tr, err := core.Apply(p.F, p.LoopHeader, prof, core.Config{
				NumThreads: 2, SkipProfitability: true, PackFlows: pack,
			})
			if err != nil {
				fail(fmt.Errorf("%s: %w", name, err))
			}
			c.packs[pack] = tr
		}
		byName[name] = c

		ns := measure(pipeDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := interp.Run(p.F, interp.Options{Mem: p.Mem, Regs: p.Regs}); err != nil {
					fail(fmt.Errorf("%s sequential: %w", name, err))
				}
			}
		})
		res.Sequential = append(res.Sequential, mcSeq{Workload: name, NsPerRun: ns})
		fmt.Printf("  sequential %-14s %12.0f ns/run\n", name, ns)
	}
	seqNs := map[string]float64{}
	for _, s := range res.Sequential {
		seqNs[s.Workload] = s.NsPerRun
	}

	fmt.Println("\npipeline wall-clock across GOMAXPROCS (ns per run, vs sequential):")
	topP := procs[len(procs)-1]
	for _, P := range procs {
		runtime.GOMAXPROCS(P)
		for _, name := range mcWorkloads {
			c := byName[name]
			for _, pack := range []bool{false, true} {
				tr := c.packs[pack]
				for _, kind := range []queue.Kind{queue.KindChannel, queue.KindRing} {
					ns := measure(pipeDur, func(n int) {
						for i := 0; i < n; i++ {
							if _, err := rt.Run(tr.Threads, rt.Options{
								Mem: c.prog.Mem, Regs: c.prog.Regs, Queue: kind,
							}); err != nil {
								fail(fmt.Errorf("%s %s pack=%v P=%d: %w", name, kind, pack, P, err))
							}
						}
					})
					vs := seqNs[name] / ns
					res.Pipeline = append(res.Pipeline, mcPipe{
						Workload: name, Procs: P, Kind: kind.String(), Pack: pack,
						NsPerRun: ns, VsSequential: vs,
					})
					fmt.Printf("  P=%d %-14s %-7s pack=%-5v  %12.0f ns/run  %5.2fx vs seq\n",
						P, name, kind, pack, ns, vs)
					if P == 4 && kind == queue.KindRing &&
						vs > res.BestPipelineSpeedup {
						res.BestPipelineSpeedup = vs
						res.BestPipelineConfig = fmt.Sprintf("%s/ring/pack=%v", name, pack)
					}
				}
			}
		}
	}

	// Stage pinning: same pipeline, LockOSThread toggled, at the top P.
	// Pinning only matters when stages can actually land on distinct
	// cores, so it is swept once at the widest point.
	fmt.Println("\nstage pinning (runtime.LockOSThread) at top P:")
	runtime.GOMAXPROCS(topP)
	{
		name := "181.mcf"
		c := byName[name]
		tr := c.packs[true]
		for _, pinned := range []bool{false, true} {
			ns := measure(pipeDur, func(n int) {
				for i := 0; i < n; i++ {
					if _, err := rt.Run(tr.Threads, rt.Options{
						Mem: c.prog.Mem, Regs: c.prog.Regs,
						Queue: queue.KindRing, LockOSThread: pinned,
					}); err != nil {
						fail(fmt.Errorf("%s pinned=%v: %w", name, pinned, err))
					}
				}
			})
			res.Pinning = append(res.Pinning, mcPin{
				Workload: name, Procs: topP, Pinned: pinned, NsPerRun: ns})
			fmt.Printf("  P=%d %-14s pinned=%-5v  %12.0f ns/run\n", topP, name, pinned, ns)
		}
	}

	// Batch sizing at 1 P vs multiple Ps: with real overlap the batched
	// publish amortizes cross-core cache misses, not just atomics.
	fmt.Println("\nring batch sweep (cap 32, ns per value):")
	for _, P := range []int{1, topP} {
		runtime.GOMAXPROCS(P)
		for _, batch := range []int{1, 8, 32} {
			ns := measure(microDur, func(n int) { moveValues(queue.KindRing, 32, batch, n) })
			res.BatchSweep = append(res.BatchSweep, mcBatch{
				Procs: P, Cap: 32, Batch: batch, NsPerValue: ns})
			fmt.Printf("  P=%d batch=%-2d  %8.1f ns/value\n", P, batch, ns)
		}
	}

	// Cached-serving engine: Workers=Shards=P, sequential execution mode
	// (the cached path — what the 10x compile-amortization headline runs
	// on), client count swept so each P gets enough offered load to show
	// its capacity.
	fmt.Println("\ncached-serving engine throughput (Workers=Shards=P):")
	peak := map[int]float64{}
	for _, P := range procs {
		runtime.GOMAXPROCS(P)
		bestIdx := -1
		for _, clients := range []int{P, 2 * P, 4 * P} {
			r := mcEngineStep(P, clients, stepDur)
			res.Engine = append(res.Engine, r)
			fmt.Printf("  P=%d clients=%-3d  %9.0f req/s  p99 %6dus  imbalance %.2f\n",
				P, clients, r.ThroughputRPS, r.P99US, r.ShardImbalance)
			if r.ThroughputRPS > peak[P] {
				peak[P] = r.ThroughputRPS
				bestIdx = len(res.Engine) - 1
			}
		}
		if bestIdx >= 0 {
			res.Engine[bestIdx].Best = true
		}
	}
	if peak[1] > 0 && peak[4] > 0 {
		res.EngineScaling4v1 = peak[4] / peak[1]
	}

	runtime.GOMAXPROCS(startP)
	fmt.Printf("\nheadlines:\n")
	fmt.Printf("  engine_scaling_4v1: %.2fx (cached serving, P=4 vs P=1; target >= 1.8 on >= 4 cores)\n",
		res.EngineScaling4v1)
	fmt.Printf("  best_pipeline_speedup_vs_sequential: %.2fx (%s at P=4)\n",
		res.BestPipelineSpeedup, res.BestPipelineConfig)

	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}

// mcEngineStep runs one closed-loop rung against a fresh sharded engine
// on the cached path and reports throughput with per-shard attribution.
func mcEngineStep(P, clients int, dur time.Duration) mcEngine {
	e := engine.New(engine.Options{Workers: P, Shards: P, QueueDepth: 4 * clients})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("mc engine shutdown: %w", err))
		}
	}()
	mix := []engine.Request{
		{Workload: "list-traversal", N: 32, Mode: "sequential"},
		{Workload: "list-of-lists", Outer: 4, Inner: 2, Mode: "sequential"},
		{Workload: "wc", Mode: "sequential"},
		{Workload: "181.mcf", Mode: "sequential"},
	}
	for _, req := range mix { // prime: the rung measures cached steady state
		if _, err := e.Run(context.Background(), req); err != nil {
			fail(fmt.Errorf("mc prime %s: %w", req.Workload, err))
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		stop = make(chan struct{})
	)
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mine []time.Duration
			for i := g; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, mine...)
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				if _, err := e.Run(context.Background(), mix[i%len(mix)]); err == nil {
					mine = append(mine, time.Since(t0))
				}
			}
		}(g)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	r := mcEngine{Procs: P, Workers: P, Clients: clients, Requests: len(lats)}
	snap := e.Metrics().Snapshot()
	r.Shards = len(snap.Shards)
	counts := make([]int64, len(snap.Shards))
	var total, max int64
	for i, sh := range snap.Shards {
		counts[i] = sh.Requests
		total += sh.Requests
		if sh.Requests > max {
			max = sh.Requests
		}
	}
	r.ShardRequests = counts
	if total > 0 && len(counts) > 0 {
		r.ShardImbalance = float64(max) / (float64(total) / float64(len(counts)))
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r.ThroughputRPS = float64(len(lats)) / elapsed.Seconds()
		i := len(lats) * 99 / 100
		if i >= len(lats) {
			i = len(lats) - 1
		}
		r.P99US = lats[i].Microseconds()
	}
	return r
}
