package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dswp/internal/engine"
	"dswp/internal/telemetry"
)

// obsFile is the BENCH_PR7.json shape: the cost of per-request tracing
// on the cached supervised serving path, swept over the three telemetry
// configurations that bracket the feature. "disabled" never mints a
// trace (the PR 6 serving path); "enabled-unsampled" mints a trace and
// records every span and bridged run event, then tail sampling drops it
// — the steady-state production cost; "always-sample" keeps every trace
// (SampleRate 1), paying materialization into span trees plus ring
// retention on top — the worst case.
type obsFile struct {
	Schema     string `json:"schema"`
	Quick      bool   `json:"quick"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Workload and Clients describe the closed loop each configuration
	// runs: Clients goroutines issuing the workload back-to-back against
	// a dedicated warm engine.
	Workload   string `json:"workload"`
	Clients    int    `json:"clients"`
	DurationMS int64  `json:"duration_ms"`

	Configs []obsRun `json:"configs"`

	// TracingOverheadPct headlines: throughput lost with tracing fully
	// on (always-sample) vs off; UnsampledOverheadPct is the same for the
	// production configuration (record everything, keep nothing).
	TracingOverheadPct   float64 `json:"tracing_overhead_pct"`
	UnsampledOverheadPct float64 `json:"unsampled_overhead_pct"`
}

type obsRun struct {
	Config        string  `json:"config"` // disabled | enabled-unsampled | always-sample
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanUS        int64   `json:"mean_us"`
	P99US         int64   `json:"p99_us"`
	// OverheadPct is throughput lost vs the disabled configuration.
	OverheadPct float64 `json:"overhead_pct"`
	// Tracer accounting for the run (zero when disabled): every request
	// must be started, and the sampling decision splits kept/dropped.
	TracesStarted int64 `json:"traces_started"`
	TracesKept    int64 `json:"traces_kept"`
	TracesDropped int64 `json:"traces_dropped"`
}

// runObsBench measures tracing overhead on the serving path and writes
// out (the BENCH_PR7.json behind EXPERIMENTS.md's telemetry budget).
func runObsBench(quick bool, out string) {
	dur := 2 * time.Second
	if quick {
		dur = 400 * time.Millisecond
	}
	clients := runtime.GOMAXPROCS(0)
	req := engine.Request{Workload: "list-traversal", N: 64}

	res := &obsFile{
		Schema:     "dswp-bench-pr7/1",
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   fmt.Sprintf("list-traversal[n=%d]", req.N),
		Clients:    clients,
		DurationMS: dur.Milliseconds(),
	}

	configs := []struct {
		name string
		topt telemetry.TraceOptions
	}{
		{"disabled", telemetry.TraceOptions{Disable: true}},
		// Negative rate and threshold disable those keep rules: traces are
		// minted and fully recorded, then always dropped at Finish.
		{"enabled-unsampled", telemetry.TraceOptions{SampleRate: -1, SlowThreshold: -1}},
		// SampleRate 1 keeps every trace: full materialization + retention.
		{"always-sample", telemetry.TraceOptions{SampleRate: 1, SlowThreshold: -1}},
	}

	fmt.Printf("request-tracing overhead (%s, %d clients, %s per config, supervised cached path):\n",
		res.Workload, clients, dur)
	var disabledRPS float64
	for _, cfg := range configs {
		r := runObsConfig(cfg.name, cfg.topt, req, clients, dur)
		if cfg.name == "disabled" {
			disabledRPS = r.ThroughputRPS
		} else if disabledRPS > 0 {
			r.OverheadPct = (disabledRPS/r.ThroughputRPS - 1) * 100
		}
		res.Configs = append(res.Configs, r)
		fmt.Printf("  %-18s %9.0f req/s  mean %5dus  p99 %6dus  %+6.1f%%  traces %d started / %d kept / %d dropped\n",
			r.Config, r.ThroughputRPS, r.MeanUS, r.P99US, r.OverheadPct,
			r.TracesStarted, r.TracesKept, r.TracesDropped)
		if cfg.name == "enabled-unsampled" {
			res.UnsampledOverheadPct = r.OverheadPct
		}
		if cfg.name == "always-sample" {
			res.TracingOverheadPct = r.OverheadPct
		}
	}

	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}

// runObsConfig runs one telemetry configuration's closed loop against a
// dedicated warm engine and reports its throughput, latency, and tracer
// accounting.
func runObsConfig(name string, topt telemetry.TraceOptions, req engine.Request,
	clients int, dur time.Duration) obsRun {
	e := engine.New(engine.Options{
		Workers:    clients,
		QueueDepth: 2 * clients, // closed loop: never shed
		Telemetry:  topt,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("obs %s: shutdown: %w", name, err))
		}
	}()
	// Prime the cache and pools so the loop measures steady state.
	if _, err := e.Run(context.Background(), req); err != nil {
		fail(fmt.Errorf("obs %s: prime: %w", name, err))
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		stop = make(chan struct{})
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			for {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, mine...)
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				if _, err := e.Run(context.Background(), req); err != nil {
					fail(fmt.Errorf("obs %s: %w", name, err))
				}
				mine = append(mine, time.Since(t0))
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	r := obsRun{Config: name, Requests: len(lats)}
	if len(lats) > 0 {
		r.ThroughputRPS = float64(len(lats)) / elapsed.Seconds()
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		r.MeanUS = (sum / time.Duration(len(lats))).Microseconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r.P99US = lats[len(lats)*99/100].Microseconds()
	}
	if t := e.Tracer(); t != nil {
		s := t.Stats()
		r.TracesStarted = s.Started
		r.TracesKept = s.KeptError + s.KeptSlow + s.KeptSampled
		r.TracesDropped = s.Dropped
	}
	return r
}
